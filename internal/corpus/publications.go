package corpus

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/corrupt"
)

// The publications domain: a DBLP-style bibliography that republishes its
// full citation corpus every year under stable paper ids. Citations are
// re-entered by hand (typos, dropped fields), venue notation drifts across
// eras, and author lists get reformatted — the third domain of the
// generalized procedure, demonstrating that the approach carries beyond
// person-shaped data.

// PublicationSchema is the bibliography's 9-attribute schema.
func PublicationSchema() Schema {
	return Schema{
		Name: "publications",
		Attrs: []string{
			"authors", "title", "venue", "year", "pages", "volume",
			"publisher", "doi", "entry_type",
		},
		// The DOI is assigned once and never drifts; nothing is volatile.
		NameAttrs: []int{0, 1},
	}
}

var (
	pubTitleWords = []string{
		"scalable", "duplicate", "detection", "entity", "resolution",
		"record", "linkage", "probabilistic", "matching", "blocking",
		"similarity", "learning", "indexing", "clustering", "schema",
		"integration", "cleaning", "quality", "benchmark", "generation",
		"historical", "voter", "datasets", "evaluation", "adaptive",
	}
	pubVenues = []struct{ full, abbrev string }{
		{"proceedings of the international conference on very large data bases", "vldb"},
		{"proceedings of the acm sigmod international conference on management of data", "sigmod"},
		{"proceedings of the international conference on data engineering", "icde"},
		{"proceedings of the international conference on extending database technology", "edbt"},
		{"the vldb journal", "vldbj"},
		{"acm transactions on database systems", "tods"},
		{"ieee transactions on knowledge and data engineering", "tkde"},
	}
	pubAuthorsLast = []string{
		"panse", "wingerath", "naumann", "christen", "getoor", "dong",
		"rahm", "koudas", "srivastava", "weis", "draisbach", "papenbrock",
		"thirumuruganathan", "whang", "garcia-molina", "bilenko", "mooney",
	}
	pubPublishers = []string{"acm", "ieee", "springer", "vldb endowment", "morgan kaufmann"}
)

// PublicationConfig parameterizes the bibliography simulation.
type PublicationConfig struct {
	Seed       int64
	Initial    int // papers in the first snapshot
	Years      int // yearly snapshots
	GrowthRate float64
	RekeyRate  float64 // fraction of entries re-entered by hand each year
	DriftYear  int     // snapshot index at which venue notation flips to abbreviations
}

// DefaultPublicationConfig mirrors the register defaults.
func DefaultPublicationConfig(seed int64, initial, years int) PublicationConfig {
	return PublicationConfig{
		Seed:       seed,
		Initial:    initial,
		Years:      years,
		GrowthRate: 0.1,
		RekeyRate:  0.2,
		DriftYear:  years / 2,
	}
}

// paper is the ground truth of one publication.
type paper struct {
	id        string
	authors   []string // "f. last" fragments
	title     string
	venueIdx  int
	year      int
	pages     string
	volume    string
	publisher string
	doi       string
	entryType string
	stored    []string
}

// GeneratePublications simulates the bibliography snapshots.
func GeneratePublications(cfg PublicationConfig) []Snapshot {
	rng := rand.New(rand.NewSource(corrupt.SubSeed(cfg.Seed, 50)))
	var papers []*paper
	nextID := 0

	newPaper := func(year int) *paper {
		nextID++
		n := 1 + rng.Intn(3)
		authors := make([]string, n)
		for i := range authors {
			authors[i] = fmt.Sprintf("%c. %s", 'a'+rune(rng.Intn(26)), pubAuthorsLast[rng.Intn(len(pubAuthorsLast))])
		}
		lo := 1 + rng.Intn(400)
		p := &paper{
			id:        fmt.Sprintf("PUB%06d", nextID),
			authors:   authors,
			title:     pubWords(rng, 3+rng.Intn(5)),
			venueIdx:  rng.Intn(len(pubVenues)),
			year:      year - rng.Intn(20),
			pages:     fmt.Sprintf("%d--%d", lo, lo+2+rng.Intn(30)),
			volume:    strconv.Itoa(1 + rng.Intn(40)),
			publisher: pubPublishers[rng.Intn(len(pubPublishers))],
			doi:       fmt.Sprintf("10.%04d/%06d", 1000+rng.Intn(9000), rng.Intn(1e6)),
			entryType: []string{"inproceedings", "article"}[rng.Intn(2)],
		}
		return p
	}

	file := func(p *paper, era int) {
		venue := pubVenues[p.venueIdx].full
		if era > 0 {
			venue = pubVenues[p.venueIdx].abbrev
		}
		vals := []string{
			strings.Join(p.authors, " and "), p.title, venue,
			strconv.Itoa(p.year), p.pages, p.volume, p.publisher,
			p.doi, p.entryType,
		}
		// Manual re-entry noise on the text fields.
		if rng.Float64() < 0.2 {
			vals[1] = corrupt.Typo(rng, vals[1])
		}
		if rng.Float64() < 0.15 {
			vals[0] = corrupt.DropToken(rng, vals[0])
		}
		if rng.Float64() < 0.1 {
			vals[4] = "" // pages omitted
		}
		if rng.Float64() < 0.1 {
			vals[5] = "" // volume omitted
		}
		if rng.Float64() < 0.1 {
			vals[1] = corrupt.TruncateTail(rng, vals[1])
		}
		p.stored = vals
	}

	var snaps []Snapshot
	for si := 0; si < cfg.Years; si++ {
		year := 2010 + si
		era := 0
		if cfg.DriftYear > 0 && si >= cfg.DriftYear {
			era = 1
		}
		if si == 0 {
			for i := 0; i < cfg.Initial; i++ {
				papers = append(papers, newPaper(year))
			}
		} else {
			for _, p := range papers {
				if rng.Float64() < cfg.RekeyRate {
					p.stored = nil // re-entered this year
				}
			}
			for i := 0; i < int(float64(len(papers))*cfg.GrowthRate); i++ {
				papers = append(papers, newPaper(year))
			}
		}
		snap := Snapshot{Date: fmt.Sprintf("%04d-01-01", year)}
		for _, p := range papers {
			if p.stored == nil {
				file(p, era)
			} else if era > 0 && p.stored[2] == pubVenues[p.venueIdx].full {
				// Venue notation drift applies to the whole export at
				// once, like the register's district renames.
				reformatted := append([]string(nil), p.stored...)
				reformatted[2] = pubVenues[p.venueIdx].abbrev
				p.stored = reformatted
			}
			snap.Records = append(snap.Records, Record{ObjectID: p.id, Values: append([]string(nil), p.stored...)})
		}
		snaps = append(snaps, snap)
	}
	return snaps
}

func pubWords(rng *rand.Rand, n int) string {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = pubTitleWords[rng.Intn(len(pubTitleWords))]
	}
	return strings.Join(parts, " ")
}
