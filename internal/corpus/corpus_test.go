package corpus

import (
	"strings"
	"testing"

	"repro/internal/dedup"
)

func smallCompanyConfig(seed int64) CompanyConfig {
	return DefaultCompanyConfig(seed, 150, 6)
}

func TestCompanySnapshotsWellFormed(t *testing.T) {
	snaps := GenerateCompanies(smallCompanyConfig(1))
	if len(snaps) != 6 {
		t.Fatalf("snapshots = %d", len(snaps))
	}
	schema := CompanySchema()
	for si, s := range snaps {
		if len(s.Records) == 0 {
			t.Fatalf("snapshot %d empty", si)
		}
		for ri, r := range s.Records {
			if len(r.Values) != len(schema.Attrs) {
				t.Fatalf("snapshot %d record %d width %d", si, ri, len(r.Values))
			}
			if r.ObjectID == "" {
				t.Fatalf("snapshot %d record %d misses object id", si, ri)
			}
		}
	}
	if len(snaps[0].Records) != 150 {
		t.Errorf("first snapshot = %d records", len(snaps[0].Records))
	}
	if len(snaps[5].Records) <= len(snaps[0].Records) {
		t.Error("register did not grow")
	}
}

func TestCompanyDeterminism(t *testing.T) {
	a := GenerateCompanies(smallCompanyConfig(2))
	b := GenerateCompanies(smallCompanyConfig(2))
	for i := range a {
		if len(a[i].Records) != len(b[i].Records) {
			t.Fatalf("snapshot %d sizes differ", i)
		}
		for j := range a[i].Records {
			for k := range a[i].Records[j].Values {
				if a[i].Records[j].Values[k] != b[i].Records[j].Values[k] {
					t.Fatalf("non-deterministic value at %d/%d/%d", i, j, k)
				}
			}
		}
	}
}

func buildCompanyDataset(t *testing.T, seed int64) *Dataset {
	t.Helper()
	d := NewDataset(CompanySchema())
	for _, s := range GenerateCompanies(smallCompanyConfig(seed)) {
		if _, err := d.ImportSnapshot(s); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestGenericPipelineDeduplicates(t *testing.T) {
	d := buildCompanyDataset(t, 3)
	if d.NumRecords() >= d.TotalRows() {
		t.Errorf("no deduplication: %d records of %d rows", d.NumRecords(), d.TotalRows())
	}
	removed := float64(d.TotalRows()-d.NumRecords()) / float64(d.TotalRows())
	if removed < 0.5 {
		t.Errorf("removed %.1f%%, want > 50%% (snapshots repeat filings)", 100*removed)
	}
	if d.NumPairs() == 0 {
		t.Error("no fuzzy duplicates survived")
	}
	// First snapshot: everything new.
	first := d.Imports()[0]
	if first.NewRecords != first.Rows || first.NewObjects != first.Rows {
		t.Errorf("first import = %+v", first)
	}
	// Later snapshots: mostly repeats.
	last := d.Imports()[len(d.Imports())-1]
	if float64(last.NewRecords) > 0.6*float64(last.Rows) {
		t.Errorf("last import still %d/%d new", last.NewRecords, last.Rows)
	}
}

func TestVolatileColumnsIgnored(t *testing.T) {
	// Status flips (ACTIVE -> DISSOLVED) must not create new records.
	schema := CompanySchema()
	d := NewDataset(schema)
	rec := make([]string, len(schema.Attrs))
	rec[0] = "ATLAS FOODS INC"
	rec[11] = "ACTIVE"
	d.ImportSnapshot(Snapshot{Date: "2010-01-01", Records: []Record{{ObjectID: "R1", Values: rec}}})
	rec2 := append([]string(nil), rec...)
	rec2[11] = "DISSOLVED"
	st, _ := d.ImportSnapshot(Snapshot{Date: "2011-01-01", Records: []Record{{ObjectID: "R1", Values: rec2}}})
	if st.NewRecords != 0 || d.NumRecords() != 1 {
		t.Errorf("status flip created a record: %+v, records %d", st, d.NumRecords())
	}
	// The surviving record lists both snapshots.
	c := d.Cluster("R1")
	if len(c.Snapshots[0]) != 2 {
		t.Errorf("snapshot list = %v", c.Snapshots[0])
	}
}

func TestImportRejectsBadWidth(t *testing.T) {
	d := NewDataset(CompanySchema())
	_, err := d.ImportSnapshot(Snapshot{Date: "x", Records: []Record{{ObjectID: "R", Values: []string{"too", "short"}}}})
	if err == nil {
		t.Fatal("bad record width accepted")
	}
}

func TestClusterHeterogeneityAndWeights(t *testing.T) {
	d := buildCompanyDataset(t, 4)
	w := d.Weights()
	if len(w) != len(CompanySchema().Attrs) {
		t.Fatalf("weights = %d", len(w))
	}
	sum := 0.0
	for _, x := range w {
		sum += x
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("weights sum = %v", sum)
	}
	hs := d.ClusterHeterogeneity()
	if len(hs) == 0 {
		t.Fatal("no multi-record clusters")
	}
	for _, h := range hs {
		if h < 0 || h > 1 {
			t.Fatalf("heterogeneity out of range: %v", h)
		}
	}
}

func TestExportAndDetect(t *testing.T) {
	d := buildCompanyDataset(t, 5)
	ds := d.Export()
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.Name != "companies" || len(ds.NameAttrs) != 2 {
		t.Errorf("export meta: %s %v", ds.Name, ds.NameAttrs)
	}
	if ds.NumTruePairs() != d.NumPairs() {
		t.Errorf("pairs: export %d vs pipeline %d", ds.NumTruePairs(), d.NumPairs())
	}
	// The full detection substrate works on the new domain out of the box.
	curve := dedup.Evaluate(ds, dedup.MeasureMELev, 4, 20, 50)
	f1, _ := curve.BestF1()
	if f1 < 0.5 {
		t.Errorf("company-register detection best F1 = %v, want >= 0.5", f1)
	}
}

func TestCompanyValuesUpperCaseMostly(t *testing.T) {
	snaps := GenerateCompanies(smallCompanyConfig(6))
	upper := 0
	total := 0
	for _, r := range snaps[0].Records {
		total++
		if r.Values[0] == strings.ToUpper(r.Values[0]) {
			upper++
		}
	}
	if float64(upper)/float64(total) < 0.9 {
		t.Errorf("register style broken: only %d/%d upper-case", upper, total)
	}
}
