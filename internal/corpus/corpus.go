// Package corpus generalizes the paper's procedure beyond voter data — its
// first future-work direction (§8: "apply it to historical corpora from
// other domains"). A historical corpus is any snapshot series of records
// with a stable object id; the generic pipeline deduplicates near-exact
// rows by hashing (dates and other volatile columns excluded, §4),
// groups records into labeled clusters, tracks per-snapshot statistics,
// scores heterogeneity with entropy weights, and exports labeled datasets
// for the detection substrate.
//
// The voter pipeline in internal/core remains the full-featured
// implementation (versioning, document storage, plausibility); this package
// is the schema-agnostic distillation that new domains start from. A
// company-register domain ships as the reference instance.
package corpus

import (
	"crypto/md5"
	"fmt"
	"strings"

	"repro/internal/dedup"
	"repro/internal/hetero"
)

// Schema describes a corpus domain.
type Schema struct {
	Name  string
	Attrs []string
	// Volatile marks columns excluded from near-exact hashing (snapshot
	// dates, ages, sequence numbers — anything that changes without the
	// object changing).
	Volatile []int
	// NameAttrs marks columns whose values get confused with one another;
	// exported datasets carry them for the matcher's 1:1 name matching.
	NameAttrs []int
}

// volatileSet returns the volatile columns as a set.
func (s Schema) volatileSet() map[int]bool {
	m := make(map[int]bool, len(s.Volatile))
	for _, v := range s.Volatile {
		m[v] = true
	}
	return m
}

// Record is one corpus row: a stable object id plus one value per schema
// attribute.
type Record struct {
	ObjectID string
	Values   []string
}

// Snapshot is one corpus publication.
type Snapshot struct {
	Date    string
	Records []Record
}

// ImportStats mirrors the voter pipeline's per-snapshot statistics.
type ImportStats struct {
	Snapshot   string
	Rows       int
	NewRecords int
	NewObjects int
}

// Cluster groups the deduplicated records of one object.
type Cluster struct {
	ObjectID string
	Records  []Record
	// Snapshots lists, per record, the snapshot dates that contained it.
	Snapshots [][]string

	hashes map[[md5.Size]byte]int
}

// Dataset is the generic labeled test dataset under construction.
type Dataset struct {
	Schema   Schema
	clusters map[string]*Cluster
	order    []string
	imports  []ImportStats
	volatile map[int]bool
	total    int
}

// NewDataset returns an empty dataset over the schema.
func NewDataset(schema Schema) *Dataset {
	return &Dataset{
		Schema:   schema,
		clusters: map[string]*Cluster{},
		volatile: schema.volatileSet(),
	}
}

// hashRecord hashes the trimmed non-volatile values.
func (d *Dataset) hashRecord(r Record) [md5.Size]byte {
	h := md5.New()
	for i, v := range r.Values {
		if d.volatile[i] {
			continue
		}
		h.Write([]byte(strings.TrimSpace(v)))
		h.Write([]byte{0x1f})
	}
	var out [md5.Size]byte
	copy(out[:], h.Sum(nil))
	return out
}

// ImportSnapshot feeds one snapshot through trimmed near-exact removal.
func (d *Dataset) ImportSnapshot(s Snapshot) (ImportStats, error) {
	st := ImportStats{Snapshot: s.Date, Rows: len(s.Records)}
	for ri, r := range s.Records {
		if len(r.Values) != len(d.Schema.Attrs) {
			return st, fmt.Errorf("corpus: %s record %d has %d values, want %d",
				s.Date, ri, len(r.Values), len(d.Schema.Attrs))
		}
		d.total++
		if r.ObjectID == "" {
			continue
		}
		c, ok := d.clusters[r.ObjectID]
		if !ok {
			c = &Cluster{ObjectID: r.ObjectID, hashes: map[[md5.Size]byte]int{}}
			d.clusters[r.ObjectID] = c
			d.order = append(d.order, r.ObjectID)
			st.NewObjects++
		}
		h := d.hashRecord(r)
		if idx, seen := c.hashes[h]; seen {
			if n := len(c.Snapshots[idx]); n == 0 || c.Snapshots[idx][n-1] != s.Date {
				c.Snapshots[idx] = append(c.Snapshots[idx], s.Date)
			}
			continue
		}
		st.NewRecords++
		c.hashes[h] = len(c.Records)
		c.Records = append(c.Records, r)
		c.Snapshots = append(c.Snapshots, []string{s.Date})
	}
	d.imports = append(d.imports, st)
	return st, nil
}

// Imports returns the per-snapshot statistics.
func (d *Dataset) Imports() []ImportStats { return d.imports }

// NumClusters returns the object count.
func (d *Dataset) NumClusters() int { return len(d.clusters) }

// NumRecords returns the deduplicated record count.
func (d *Dataset) NumRecords() int {
	n := 0
	for _, c := range d.clusters {
		n += len(c.Records)
	}
	return n
}

// NumPairs returns the duplicate-pair count.
func (d *Dataset) NumPairs() int {
	n := 0
	for _, c := range d.clusters {
		n += len(c.Records) * (len(c.Records) - 1) / 2
	}
	return n
}

// TotalRows returns all rows ever offered.
func (d *Dataset) TotalRows() int { return d.total }

// Clusters visits the clusters in first-seen order.
func (d *Dataset) Clusters(fn func(*Cluster) bool) {
	for _, id := range d.order {
		if !fn(d.clusters[id]) {
			return
		}
	}
}

// Cluster returns one cluster by object id, or nil.
func (d *Dataset) Cluster(id string) *Cluster { return d.clusters[id] }

// Weights returns the schema's entropy weights from one record per cluster
// (§6.3 carried over).
func (d *Dataset) Weights() []float64 {
	var reps [][]string
	d.Clusters(func(c *Cluster) bool {
		reps = append(reps, trimmedValues(c.Records[0].Values))
		return true
	})
	return hetero.EntropyWeightsFromRows(reps)
}

// ClusterHeterogeneity returns the mean pair heterogeneity of each
// multi-record cluster, in cluster order.
func (d *Dataset) ClusterHeterogeneity() []float64 {
	weights := d.Weights()
	var out []float64
	d.Clusters(func(c *Cluster) bool {
		n := len(c.Records)
		if n < 2 {
			return true
		}
		sum, pairs := 0.0, 0
		for i := 1; i < n; i++ {
			for j := 0; j < i; j++ {
				sum += hetero.Heterogeneity(
					trimmedValues(c.Records[i].Values),
					trimmedValues(c.Records[j].Values), weights)
				pairs++
			}
		}
		out = append(out, sum/float64(pairs))
		return true
	})
	return out
}

// Export renders the dataset for the detection substrate.
func (d *Dataset) Export() *dedup.Dataset {
	out := &dedup.Dataset{
		Name:      d.Schema.Name,
		Attrs:     d.Schema.Attrs,
		NameAttrs: append([]int(nil), d.Schema.NameAttrs...),
	}
	cid := 0
	d.Clusters(func(c *Cluster) bool {
		for _, r := range c.Records {
			out.Records = append(out.Records, trimmedValues(r.Values))
			out.ClusterOf = append(out.ClusterOf, cid)
		}
		cid++
		return true
	})
	return out
}

func trimmedValues(vals []string) []string {
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = strings.TrimSpace(v)
	}
	return out
}
