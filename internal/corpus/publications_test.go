package corpus

import (
	"strings"
	"testing"

	"repro/internal/dedup"
)

func TestPublicationsSnapshotsWellFormed(t *testing.T) {
	cfg := DefaultPublicationConfig(1, 200, 6)
	snaps := GeneratePublications(cfg)
	if len(snaps) != 6 {
		t.Fatalf("snapshots = %d", len(snaps))
	}
	schema := PublicationSchema()
	for si, s := range snaps {
		for ri, r := range s.Records {
			if len(r.Values) != len(schema.Attrs) {
				t.Fatalf("snapshot %d record %d width %d", si, ri, len(r.Values))
			}
			if r.ObjectID == "" {
				t.Fatalf("snapshot %d record %d misses id", si, ri)
			}
		}
	}
	if len(snaps[5].Records) <= len(snaps[0].Records) {
		t.Error("bibliography did not grow")
	}
}

func TestPublicationsPipelineEndToEnd(t *testing.T) {
	cfg := DefaultPublicationConfig(2, 250, 6)
	d := NewDataset(PublicationSchema())
	for _, s := range GeneratePublications(cfg) {
		if _, err := d.ImportSnapshot(s); err != nil {
			t.Fatal(err)
		}
	}
	// Yearly republication floods the corpus with exact duplicates.
	removed := float64(d.TotalRows()-d.NumRecords()) / float64(d.TotalRows())
	if removed < 0.45 {
		t.Errorf("removed %.1f%%, want > 45%%", 100*removed)
	}
	if d.NumPairs() == 0 {
		t.Fatal("no fuzzy duplicates from re-entry")
	}
	// Detection works on the third domain out of the box.
	ds := d.Export()
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	f1, _ := dedup.Evaluate(ds, dedup.MeasureTrigramJaccard, 4, 20, 50).BestF1()
	if f1 < 0.5 {
		t.Errorf("publication detection best F1 = %v", f1)
	}
}

func TestPublicationsVenueDrift(t *testing.T) {
	cfg := DefaultPublicationConfig(3, 100, 6)
	cfg.DriftYear = 3
	snaps := GeneratePublications(cfg)
	hasFull, hasAbbrev := false, false
	for si, s := range snaps {
		for _, r := range s.Records {
			venue := r.Values[2]
			long := strings.Contains(venue, " ")
			if si < 3 && !long {
				t.Fatalf("abbreviated venue %q before the drift (snapshot %d)", venue, si)
			}
			if si >= 3 && long {
				t.Fatalf("full venue %q after the drift (snapshot %d)", venue, si)
			}
			if long {
				hasFull = true
			} else {
				hasAbbrev = true
			}
		}
	}
	if !hasFull || !hasAbbrev {
		t.Error("drift eras not both observed")
	}
}

func TestPublicationsDeterminism(t *testing.T) {
	a := GeneratePublications(DefaultPublicationConfig(7, 150, 4))
	b := GeneratePublications(DefaultPublicationConfig(7, 150, 4))
	for i := range a {
		if len(a[i].Records) != len(b[i].Records) {
			t.Fatalf("snapshot %d sizes differ", i)
		}
		for j := range a[i].Records {
			for k := range a[i].Records[j].Values {
				if a[i].Records[j].Values[k] != b[i].Records[j].Values[k] {
					t.Fatalf("non-deterministic value at %d/%d/%d", i, j, k)
				}
			}
		}
	}
}
