package corpus

import (
	"fmt"
	"math/rand"
	"strconv"

	"repro/internal/corrupt"
)

// The company-register domain: the reference instance of the generalized
// procedure. A commercial register publishes yearly snapshots of companies
// under a stable registration number; companies rebrand, convert legal
// forms, relocate and change officers, and filings are entered manually —
// the same shape as the voter register in a different domain.

// CompanySchema is the register's 12-attribute schema.
func CompanySchema() Schema {
	return Schema{
		Name: "companies",
		Attrs: []string{
			"legal_name", "trade_name", "legal_form", "street", "city",
			"zip", "phone", "industry_code", "industry_desc", "officer",
			"founded", "status",
		},
		// snapshot-independent schema: only the status is volatile (it
		// flips to DISSOLVED without the company itself changing).
		Volatile:  []int{11},
		NameAttrs: []int{0, 1},
	}
}

var (
	companyCores = []string{
		"ATLAS", "PIONEER", "SUMMIT", "HARBOR", "CASCADE", "MERIDIAN",
		"BLUE RIDGE", "PIEDMONT", "CAROLINA", "TRIANGLE", "CRESCENT",
		"LIBERTY", "HERITAGE", "KEYSTONE", "STERLING", "GRANITE", "BEACON",
		"HORIZON", "APEX", "CARDINAL", "LONGLEAF", "RIVERSIDE", "OAKWOOD",
	}
	companyLines = []string{
		"LOGISTICS", "FOODS", "TEXTILES", "SOFTWARE", "CONSTRUCTION",
		"FURNITURE", "PHARMA", "ANALYTICS", "ROBOTICS", "PACKAGING",
		"CONSULTING", "ENERGY", "PRINTING", "MACHINERY", "SEAFOOD",
	}
	legalForms = []string{"INC", "LLC", "CORP", "LP", "PLLC"}
	industries = []struct{ code, desc string }{
		{"4841", "GENERAL FREIGHT TRUCKING"},
		{"3118", "BAKERIES AND TORTILLA MANUFACTURING"},
		{"5112", "SOFTWARE PUBLISHERS"},
		{"2362", "NONRESIDENTIAL BUILDING CONSTRUCTION"},
		{"3371", "HOUSEHOLD FURNITURE MANUFACTURING"},
		{"3254", "PHARMACEUTICAL MANUFACTURING"},
		{"5416", "MANAGEMENT CONSULTING SERVICES"},
		{"2211", "ELECTRIC POWER GENERATION"},
		{"3231", "PRINTING AND RELATED SUPPORT"},
		{"3331", "AG AND CONSTRUCTION MACHINERY"},
	}
	companyCities = []string{
		"RALEIGH", "CHARLOTTE", "DURHAM", "GREENSBORO", "WILMINGTON",
		"ASHEVILLE", "CARY", "CONCORD", "HICKORY", "BOONE",
	}
	companyStreets = []string{
		"COMMERCE BLVD", "INDUSTRIAL DR", "TRADE ST", "MARKET ST",
		"ENTERPRISE WAY", "CORPORATE PKWY", "MAIN ST", "DEPOT RD",
	}
	officerFirst = []string{"JAMES", "MARY", "ROBERT", "LINDA", "DAVID", "SUSAN", "CARLOS", "ANNE"}
	officerLast  = []string{"SMITH", "JOHNSON", "LEE", "PATEL", "GARCIA", "MILLER", "NGUYEN", "BROWN"}
)

// company is one simulated business's ground truth.
type company struct {
	id       string
	core     string
	line     string
	form     string
	street   string
	houseNum string
	city     string
	zip      string
	phone    string
	indIdx   int
	officer  string
	founded  int
	active   bool
	stored   []string // last filed values with entry errors
}

// CompanyConfig parameterizes the register simulation.
type CompanyConfig struct {
	Seed       int64
	Initial    int      // companies in the first snapshot
	Snapshots  []string // snapshot dates
	NewRate    float64  // new registrations per snapshot (fraction of active)
	RefileRate float64  // fresh manual filing per snapshot
	RenameRate float64  // rebrand (trade name changes)
	MoveRate   float64
	OfficerRT  float64 // officer change rate
	DissolveRT float64
	Errors     ErrorRates
}

// ErrorRates are the manual-filing error probabilities per value.
type ErrorRates struct {
	Typo      float64
	Abbrev    float64
	Drop      float64
	Format    float64
	Case      float64
	Transpose float64
}

// DefaultCompanyConfig mirrors the voter defaults at register scale.
func DefaultCompanyConfig(seed int64, initial, years int) CompanyConfig {
	dates := make([]string, years)
	for i := range dates {
		dates[i] = fmt.Sprintf("%04d-01-01", 2010+i)
	}
	return CompanyConfig{
		Seed:       seed,
		Initial:    initial,
		Snapshots:  dates,
		NewRate:    0.05,
		RefileRate: 0.15,
		RenameRate: 0.02,
		MoveRate:   0.04,
		OfficerRT:  0.05,
		DissolveRT: 0.02,
		Errors: ErrorRates{
			Typo: 0.03, Abbrev: 0.03, Drop: 0.02,
			Format: 0.02, Case: 0.02, Transpose: 0.01,
		},
	}
}

// GenerateCompanies simulates the register and returns its snapshots.
func GenerateCompanies(cfg CompanyConfig) []Snapshot {
	rng := rand.New(rand.NewSource(corrupt.SubSeed(cfg.Seed, 40)))
	var companies []*company
	nextID := 0

	newCompany := func(year int) *company {
		nextID++
		c := &company{
			id:      fmt.Sprintf("REG%06d", nextID),
			core:    companyCores[rng.Intn(len(companyCores))],
			line:    companyLines[rng.Intn(len(companyLines))],
			form:    legalForms[rng.Intn(len(legalForms))],
			indIdx:  rng.Intn(len(industries)),
			founded: year - rng.Intn(30),
			active:  true,
		}
		c.street = companyStreets[rng.Intn(len(companyStreets))]
		c.houseNum = strconv.Itoa(100 + rng.Intn(9000))
		c.city = companyCities[rng.Intn(len(companyCities))]
		c.zip = strconv.Itoa(27000 + rng.Intn(2000))
		c.phone = fmt.Sprintf("%03d%07d", 300+rng.Intn(600), rng.Intn(1e7))
		c.officer = officerFirst[rng.Intn(len(officerFirst))] + " " + officerLast[rng.Intn(len(officerLast))]
		return c
	}

	var snaps []Snapshot
	for si, date := range cfg.Snapshots {
		year := 2010 + si
		if si == 0 {
			for i := 0; i < cfg.Initial; i++ {
				c := newCompany(year)
				companies = append(companies, c)
			}
		} else {
			active := 0
			for _, c := range companies {
				if !c.active {
					continue
				}
				active++
				switch {
				case rng.Float64() < cfg.DissolveRT:
					c.active = false
				case rng.Float64() < cfg.RenameRate:
					c.core = companyCores[rng.Intn(len(companyCores))]
					c.stored = nil // force a fresh filing
				case rng.Float64() < cfg.MoveRate:
					c.street = companyStreets[rng.Intn(len(companyStreets))]
					c.houseNum = strconv.Itoa(100 + rng.Intn(9000))
					if rng.Float64() < 0.4 {
						c.city = companyCities[rng.Intn(len(companyCities))]
						c.zip = strconv.Itoa(27000 + rng.Intn(2000))
					}
					c.stored = nil
				case rng.Float64() < cfg.OfficerRT:
					c.officer = officerFirst[rng.Intn(len(officerFirst))] + " " + officerLast[rng.Intn(len(officerLast))]
					c.stored = nil
				case rng.Float64() < cfg.RefileRate:
					c.stored = nil
				}
			}
			for i := 0; i < int(float64(active)*cfg.NewRate); i++ {
				companies = append(companies, newCompany(year))
			}
		}

		snap := Snapshot{Date: date}
		for _, c := range companies {
			if c.stored == nil {
				fileCompany(rng, cfg.Errors, c)
			}
			vals := append([]string(nil), c.stored...)
			if c.active {
				vals[11] = "ACTIVE"
			} else {
				vals[11] = "DISSOLVED"
			}
			snap.Records = append(snap.Records, Record{ObjectID: c.id, Values: vals})
		}
		snaps = append(snaps, snap)
	}
	return snaps
}

// fileCompany renders a fresh manual filing with entry errors; the status
// (column 11) and founding year stay clean — they are register-derived.
func fileCompany(rng *rand.Rand, e ErrorRates, c *company) {
	legal := c.core + " " + c.line + " " + c.form
	trade := c.core + " " + c.line
	vals := []string{
		legal, trade, c.form, c.houseNum + " " + c.street, c.city,
		c.zip, c.phone, industries[c.indIdx].code, industries[c.indIdx].desc,
		c.officer, strconv.Itoa(c.founded), "",
	}
	for i := 0; i < 10; i++ {
		v := vals[i]
		if v == "" {
			continue
		}
		if rng.Float64() < e.Typo {
			v = corrupt.Typo(rng, v)
		}
		if rng.Float64() < e.Abbrev && (i == 2 || i == 9) {
			v = corrupt.Abbreviate(rng, v)
		}
		if rng.Float64() < e.Drop {
			v = corrupt.DropToken(rng, v)
		}
		if rng.Float64() < e.Format {
			v = corrupt.FormatNoise(rng, v)
		}
		if rng.Float64() < e.Case {
			v = corrupt.CaseNoise(rng, v)
		}
		if rng.Float64() < e.Transpose {
			v = corrupt.TransposeTokens(rng, v)
		}
		vals[i] = v
	}
	c.stored = vals
}
