// Package corrupt provides deterministic error-injection primitives: the
// realistic data-quality problems the paper finds in manually entered voter
// registrations (§6.4) — typos, OCR confusions, phonetic respellings,
// abbreviations, prefix/postfix truncations, formatting drift, token
// transpositions, value confusions between attributes, integrated and
// scattered values, missing values and outliers — plus a configurable
// Corruptor that applies a chosen error mix to whole records.
//
// Everything is driven by explicit *rand.Rand sources so the same seed
// reproduces the same corrupted dataset byte for byte.
package corrupt

import "math/rand"

// splitmix64 advances and mixes a 64-bit state; used to derive independent
// sub-stream seeds from one master seed.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SubSeed derives the n-th independent sub-seed from a master seed, so each
// component of the generator can own its stream without cross-talk.
func SubSeed(master int64, n int) int64 {
	s := uint64(master)
	var v uint64
	for i := 0; i <= n; i++ {
		v = splitmix64(&s)
	}
	return int64(v)
}

// NewRand returns a deterministic source for the n-th sub-stream of master.
func NewRand(master int64, n int) *rand.Rand {
	return rand.New(rand.NewSource(SubSeed(master, n)))
}
