package corrupt

import (
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/voter"
)

// ConfuseValues swaps the values of two attributes in place — the paper's
// value-confusion irregularity (e.g. first and last name transposed between
// two registrations of the same voter).
func ConfuseValues(r *voter.Record, i, j int) {
	r.Values[i], r.Values[j] = r.Values[j], r.Values[i]
}

// IntegrateValue appends the value of attribute from as an extra token of
// attribute into and clears from — the "integrated value" irregularity
// (e.g. a middle name stored as a second token of the first name).
func IntegrateValue(r *voter.Record, from, into int) {
	v := strings.TrimSpace(r.Values[from])
	if v == "" {
		return
	}
	if t := strings.TrimSpace(r.Values[into]); t != "" {
		r.Values[into] = t + " " + v
	} else {
		r.Values[into] = v
	}
	r.Values[from] = ""
}

// ScatterValues redistributes the combined token multiset of attributes i
// and j randomly between the two — the "scattered values" irregularity. The
// union of tokens is preserved; their assignment is not. Both attributes end
// up non-empty when at least two tokens exist.
func ScatterValues(rng *rand.Rand, r *voter.Record, i, j int) {
	tokens := append(strings.Fields(r.Values[i]), strings.Fields(r.Values[j])...)
	if len(tokens) < 2 {
		return
	}
	rng.Shuffle(len(tokens), func(a, b int) { tokens[a], tokens[b] = tokens[b], tokens[a] })
	cut := 1 + rng.Intn(len(tokens)-1)
	r.Values[i] = strings.Join(tokens[:cut], " ")
	r.Values[j] = strings.Join(tokens[cut:], " ")
}

// MakeMissing blanks the value of attribute i, optionally using one of the
// conventional missing markers instead of the empty string.
func MakeMissing(rng *rand.Rand, r *voter.Record, i int) {
	markers := []string{"", "", "", "-", "UNKNOWN"}
	r.Values[i] = markers[rng.Intn(len(markers))]
}

// OutlierAge replaces the age value with an implausible number (the paper's
// example: age = 5069), simulating a data-entry slip that concatenated
// digits.
func OutlierAge(rng *rand.Rand, r *voter.Record) {
	age := r.Age()
	if age < 0 {
		age = rng.Intn(90) + 18
	}
	// Duplicate one digit or append the year's tail digits.
	s := strconv.Itoa(age)
	pos := rng.Intn(len(s) + 1)
	d := byte('0' + rng.Intn(10))
	r.Values[voter.IdxAge] = s[:pos] + string(d) + s[pos:]
}

// Config sets the per-value probabilities of the Corruptor. All rates are
// independent per eligible attribute value; a rate of 0 disables the error
// type. The zero value applies no corruption.
type Config struct {
	Typo            float64 // single-edit typos in name/string values
	OCR             float64 // OCR digit/letter confusions
	Phonetic        float64 // soundex-preserving respellings
	Abbreviation    float64 // reduce to an initial
	TruncateTail    float64 // prefix irregularity
	TruncateHead    float64 // postfix irregularity
	DropToken       float64 // forgotten token
	TokenTranspose  float64 // swapped tokens inside a value
	Format          float64 // representation-only changes
	Case            float64 // upper/lower case noise
	Missing         float64 // blank a value
	Whitespace      float64 // leading/trailing spaces
	Nickname        float64 // formal first name <-> common nickname
	ValueConfusion  float64 // per record: swap first/middle/last name pair
	IntegratedValue float64 // per record: merge middle name into another name
	ScatteredValue  float64 // per record: rescatter name tokens
	OutlierAge      float64 // per record: implausible age value
}

// Light returns a configuration producing a realistically low error density,
// matching the small NC percentages of Table 4 (most duplicate pairs differ
// only in a couple of values).
func Light() Config {
	return Config{
		Typo:           0.02,
		OCR:            0.0005,
		Phonetic:       0.008,
		Abbreviation:   0.04,
		TruncateTail:   0.01,
		TruncateHead:   0.002,
		DropToken:      0.005,
		TokenTranspose: 0.004,
		Format:         0.004,
		Case:           0.002,
		Missing:        0.03,
		Whitespace:     0.05,
		// Nicknames stay off in the calibrated default: the paper's
		// Table 4 does not profile them. Heavy() and user configs opt in.
		Nickname:        0,
		ValueConfusion:  0.0015,
		IntegratedValue: 0.004,
		ScatteredValue:  0.0008,
		OutlierAge:      0.001,
	}
}

// Heavy returns a configuration with error rates an order of magnitude above
// Light, for stress datasets and the pollution-tool baseline.
func Heavy() Config {
	c := Light()
	c.Typo, c.OCR, c.Phonetic = 0.15, 0.01, 0.05
	c.Abbreviation, c.TruncateTail, c.TruncateHead = 0.1, 0.05, 0.02
	c.DropToken, c.TokenTranspose, c.Format = 0.03, 0.03, 0.03
	c.Missing, c.Whitespace, c.Nickname = 0.1, 0.15, 0.05
	c.ValueConfusion, c.IntegratedValue, c.ScatteredValue = 0.02, 0.02, 0.01
	c.OutlierAge = 0.01
	return c
}

// Corruptor applies a Config to voter records using its own deterministic
// random stream. It is not safe for concurrent use; create one per
// goroutine.
type Corruptor struct {
	cfg Config
	rng *rand.Rand
}

// NewCorruptor returns a corruptor over the given stream.
func NewCorruptor(cfg Config, rng *rand.Rand) *Corruptor {
	return &Corruptor{cfg: cfg, rng: rng}
}

// nameIndices are the attributes subject to cross-attribute name errors.
var nameIndices = []int{voter.IdxFirstName, voter.IdxMiddleName, voter.IdxLastName}

// stringAttrIndices are the person attributes eligible for in-value string
// errors (names, places, street and city values).
var stringAttrIndices = []int{
	voter.IdxFirstName, voter.IdxMiddleName, voter.IdxLastName,
	voter.IdxBirthPlace, voter.IdxStreetName, voter.IdxResCity,
	voter.IdxMailAddr1,
}

// Apply corrupts r in place. Each eligible value independently suffers each
// configured in-value error with its rate; the record-level errors (value
// confusion, integration, scattering, age outlier) fire at most once per
// record.
func (c *Corruptor) Apply(r *voter.Record) {
	cfg, rng := c.cfg, c.rng
	for _, i := range stringAttrIndices {
		v := r.Values[i]
		if strings.TrimSpace(v) == "" {
			continue
		}
		// The zero-rate case must not consume a random draw: adding the
		// nickname feature would otherwise shift every downstream stream
		// and break seed-for-seed reproducibility of older configs.
		if cfg.Nickname > 0 && i == voter.IdxFirstName && rng.Float64() < cfg.Nickname {
			v = Nickname(rng, v)
		}
		if rng.Float64() < cfg.Typo {
			v = Typo(rng, v)
		}
		if rng.Float64() < cfg.OCR {
			v = OCRError(rng, v)
		}
		if rng.Float64() < cfg.Phonetic {
			v = PhoneticError(rng, v)
		}
		if rng.Float64() < cfg.Abbreviation && (i == voter.IdxMiddleName || i == voter.IdxFirstName) {
			v = Abbreviate(rng, v)
		}
		if rng.Float64() < cfg.TruncateTail {
			v = TruncateTail(rng, v)
		}
		if rng.Float64() < cfg.TruncateHead {
			v = TruncateHead(rng, v)
		}
		if rng.Float64() < cfg.DropToken {
			v = DropToken(rng, v)
		}
		if rng.Float64() < cfg.TokenTranspose {
			v = TransposeTokens(rng, v)
		}
		if rng.Float64() < cfg.Format {
			v = FormatNoise(rng, v)
		}
		if rng.Float64() < cfg.Case {
			v = CaseNoise(rng, v)
		}
		if rng.Float64() < cfg.Missing {
			r.Values[i] = v
			MakeMissing(rng, r, i)
			continue
		}
		r.Values[i] = v
	}
	if rng.Float64() < cfg.ValueConfusion {
		i := rng.Intn(len(nameIndices))
		j := rng.Intn(len(nameIndices) - 1)
		if j >= i {
			j++
		}
		ConfuseValues(r, nameIndices[i], nameIndices[j])
	}
	if rng.Float64() < cfg.IntegratedValue {
		into := nameIndices[rng.Intn(2)*2] // first or last name
		IntegrateValue(r, voter.IdxMiddleName, into)
	}
	if rng.Float64() < cfg.ScatteredValue {
		ScatterValues(rng, r, voter.IdxMiddleName, voter.IdxLastName)
	}
	if rng.Float64() < cfg.OutlierAge {
		OutlierAge(rng, r)
	}
	if cfg.Whitespace > 0 {
		for _, i := range stringAttrIndices {
			if r.Values[i] != "" && rng.Float64() < cfg.Whitespace {
				r.Values[i] = WhitespacePad(rng, r.Values[i])
			}
		}
	}
}
