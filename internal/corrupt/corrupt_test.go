package corrupt

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/simil"
	"repro/internal/voter"
)

func rng() *rand.Rand { return rand.New(rand.NewSource(1)) }

func TestSubSeedIndependence(t *testing.T) {
	s1 := SubSeed(42, 0)
	s2 := SubSeed(42, 1)
	if s1 == s2 {
		t.Error("consecutive sub-seeds collide")
	}
	if SubSeed(42, 0) != s1 {
		t.Error("SubSeed is not deterministic")
	}
	if SubSeed(43, 0) == s1 {
		t.Error("different masters give the same sub-seed")
	}
}

func TestTypoIsDistanceOne(t *testing.T) {
	r := rng()
	for i := 0; i < 500; i++ {
		orig := "WILLIAMS"
		got := Typo(r, orig)
		if d := simil.DamerauLevenshtein(orig, got); d != 1 {
			t.Fatalf("Typo(%q) = %q, distance %d, want 1", orig, got, d)
		}
	}
}

func TestTypoShortStringsUntouched(t *testing.T) {
	r := rng()
	for _, s := range []string{"", "A", "AB"} {
		if got := Typo(r, s); got != s {
			t.Errorf("Typo(%q) = %q, want unchanged", s, got)
		}
	}
}

func TestOCRErrorChangesDigitness(t *testing.T) {
	r := rng()
	got := OCRError(r, "NICOLE")
	if got == "NICOLE" {
		t.Fatal("OCRError left a confusable value unchanged")
	}
	// Exactly one position differs, and at that position one side is a digit.
	diff := 0
	for i := range got {
		if got[i] != "NICOLE"[i] {
			diff++
			gd := got[i] >= '0' && got[i] <= '9'
			od := "NICOLE"[i] >= '0' && "NICOLE"[i] <= '9'
			if gd == od {
				t.Errorf("OCR diff at %d is not letter-digit: %c vs %c", i, "NICOLE"[i], got[i])
			}
		}
	}
	if diff != 1 {
		t.Errorf("OCRError changed %d positions, want 1", diff)
	}
	if got := OCRError(r, "WWW"); got != "WWW" {
		t.Errorf("OCRError(%q) = %q, want unchanged (no confusable char)", "WWW", got)
	}
}

func TestPhoneticErrorPreservesSoundex(t *testing.T) {
	r := rng()
	for i := 0; i < 500; i++ {
		orig := "BAILEY"
		got := PhoneticError(r, orig)
		if simil.Soundex(got) != simil.Soundex(orig) {
			t.Fatalf("PhoneticError(%q) = %q changed soundex %s -> %s",
				orig, got, simil.Soundex(orig), simil.Soundex(got))
		}
	}
}

func TestPhoneticErrorEventuallyChanges(t *testing.T) {
	r := rng()
	changed := false
	for i := 0; i < 100 && !changed; i++ {
		changed = PhoneticError(r, "BAILEY") != "BAILEY"
	}
	if !changed {
		t.Error("PhoneticError never produced a respelling")
	}
}

func TestAbbreviate(t *testing.T) {
	r := rng()
	got := Abbreviate(r, "ALEXANDER")
	if got != "A" && got != "A." {
		t.Errorf("Abbreviate = %q", got)
	}
	if got := Abbreviate(r, ""); got != "" {
		t.Errorf("Abbreviate(empty) = %q", got)
	}
}

func TestTruncateTailIsPrefix(t *testing.T) {
	f := func(s string) bool {
		r := rng()
		got := TruncateTail(r, s)
		return strings.HasPrefix(s, got) && got != "" == (s != "")
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
	r := rng()
	got := TruncateTail(r, "BRAGGTOWN")
	if !strings.HasPrefix("BRAGGTOWN", got) || got == "BRAGGTOWN" {
		t.Errorf("TruncateTail(BRAGGTOWN) = %q", got)
	}
}

func TestTruncateHeadIsSuffix(t *testing.T) {
	r := rng()
	got := TruncateHead(r, "BRAGGTOWN")
	if !strings.HasSuffix("BRAGGTOWN", got) || got == "BRAGGTOWN" {
		t.Errorf("TruncateHead(BRAGGTOWN) = %q", got)
	}
}

func TestDropTokenSubset(t *testing.T) {
	r := rng()
	got := DropToken(r, "ANH THI NGUYEN")
	tokens := strings.Fields(got)
	if len(tokens) != 2 {
		t.Fatalf("DropToken result = %q", got)
	}
	if got := DropToken(r, "SINGLE"); got != "SINGLE" {
		t.Errorf("DropToken(single token) = %q", got)
	}
}

func TestTransposeTokensPreservesMultiset(t *testing.T) {
	r := rng()
	orig := "ANH THI NGUYEN"
	got := TransposeTokens(r, orig)
	if got == orig {
		t.Fatalf("TransposeTokens did not change order")
	}
	a := strings.Fields(orig)
	b := strings.Fields(got)
	if len(a) != len(b) {
		t.Fatalf("token count changed: %q", got)
	}
	counts := map[string]int{}
	for _, x := range a {
		counts[x]++
	}
	for _, x := range b {
		counts[x]--
	}
	for tok, c := range counts {
		if c != 0 {
			t.Errorf("token multiset changed at %q", tok)
		}
	}
}

func TestFormatNoiseOnlyNonAlnum(t *testing.T) {
	r := rng()
	stripped := func(s string) string {
		return strings.Map(func(c rune) rune {
			if c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' {
				return c
			}
			return -1
		}, s)
	}
	for i := 0; i < 100; i++ {
		orig := "JRS RIDGE"
		got := FormatNoise(r, orig)
		if stripped(got) != stripped(orig) {
			t.Fatalf("FormatNoise changed alphanumerics: %q -> %q", orig, got)
		}
	}
}

func TestWhitespacePadTrimsBack(t *testing.T) {
	r := rng()
	got := WhitespacePad(r, "SMITH")
	if strings.TrimSpace(got) != "SMITH" {
		t.Errorf("WhitespacePad core changed: %q", got)
	}
	if got == "SMITH" {
		t.Error("WhitespacePad added no whitespace")
	}
}

func TestCaseNoiseCaseInsensitiveEqual(t *testing.T) {
	r := rng()
	got := CaseNoise(r, "SMITH")
	if !strings.EqualFold(got, "SMITH") {
		t.Errorf("CaseNoise changed letters: %q", got)
	}
	if got == "SMITH" {
		t.Error("CaseNoise left the value unchanged")
	}
}

func makeRecord() voter.Record {
	r := voter.NewRecord()
	r.SetName("ncid", "AA1")
	r.SetName("first_name", "DEBRA")
	r.SetName("midl_name", "ANN")
	r.SetName("last_name", "WILLIAMS")
	r.SetName("birth_place", "NC")
	r.SetName("street_name", "MAIN STREET")
	r.SetName("res_city_desc", "DURHAM")
	r.SetName("age", "45")
	return r
}

func TestConfuseValues(t *testing.T) {
	r := makeRecord()
	ConfuseValues(&r, voter.IdxFirstName, voter.IdxLastName)
	if r.GetName("first_name") != "WILLIAMS" || r.GetName("last_name") != "DEBRA" {
		t.Errorf("ConfuseValues: %q / %q", r.GetName("first_name"), r.GetName("last_name"))
	}
}

func TestIntegrateValue(t *testing.T) {
	r := makeRecord()
	IntegrateValue(&r, voter.IdxMiddleName, voter.IdxFirstName)
	if r.GetName("first_name") != "DEBRA ANN" {
		t.Errorf("first_name = %q", r.GetName("first_name"))
	}
	if r.GetName("midl_name") != "" {
		t.Errorf("midl_name = %q, want empty", r.GetName("midl_name"))
	}
	// Integrating an empty value is a no-op.
	r2 := makeRecord()
	r2.SetName("midl_name", "")
	IntegrateValue(&r2, voter.IdxMiddleName, voter.IdxFirstName)
	if r2.GetName("first_name") != "DEBRA" {
		t.Errorf("no-op integrate changed first_name to %q", r2.GetName("first_name"))
	}
}

func TestScatterValuesPreservesTokenUnion(t *testing.T) {
	r := makeRecord()
	r.SetName("midl_name", "AN LE")
	r.SetName("last_name", "MA")
	ScatterValues(rng(), &r, voter.IdxMiddleName, voter.IdxLastName)
	got := append(strings.Fields(r.GetName("midl_name")), strings.Fields(r.GetName("last_name"))...)
	if len(got) != 3 {
		t.Fatalf("token count = %d, want 3", len(got))
	}
	want := map[string]bool{"AN": true, "LE": true, "MA": true}
	for _, tok := range got {
		if !want[tok] {
			t.Errorf("unexpected token %q", tok)
		}
	}
}

func TestOutlierAge(t *testing.T) {
	r := makeRecord()
	OutlierAge(rng(), &r)
	if len(r.GetName("age")) != 3 {
		t.Errorf("outlier age = %q, want 3 digits", r.GetName("age"))
	}
}

func TestCorruptorDeterminism(t *testing.T) {
	apply := func() voter.Record {
		r := makeRecord()
		c := NewCorruptor(Heavy(), rand.New(rand.NewSource(99)))
		for i := 0; i < 10; i++ {
			c.Apply(&r)
		}
		return r
	}
	a, b := apply(), apply()
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatalf("non-deterministic corruption at column %d: %q vs %q",
				i, a.Values[i], b.Values[i])
		}
	}
}

func TestCorruptorZeroConfigIsNoop(t *testing.T) {
	r := makeRecord()
	orig := r.Clone()
	c := NewCorruptor(Config{}, rng())
	c.Apply(&r)
	for i := range r.Values {
		if r.Values[i] != orig.Values[i] {
			t.Fatalf("zero config changed column %d", i)
		}
	}
}

func TestCorruptorHeavyChangesSomething(t *testing.T) {
	c := NewCorruptor(Heavy(), rng())
	changed := false
	for i := 0; i < 20 && !changed; i++ {
		r := makeRecord()
		orig := r.Clone()
		c.Apply(&r)
		for j := range r.Values {
			if r.Values[j] != orig.Values[j] {
				changed = true
				break
			}
		}
	}
	if !changed {
		t.Error("Heavy corruptor changed nothing in 20 records")
	}
}

func TestCorruptorNeverTouchesNCID(t *testing.T) {
	c := NewCorruptor(Heavy(), rng())
	for i := 0; i < 200; i++ {
		r := makeRecord()
		c.Apply(&r)
		if r.NCID() != "AA1" {
			t.Fatal("corruptor changed the gold-standard NCID")
		}
	}
}

func TestNicknameBothDirections(t *testing.T) {
	r := rng()
	got := Nickname(r, "WILLIAM")
	if got == "WILLIAM" {
		t.Errorf("formal name not substituted: %q", got)
	}
	if !HasNickname(got) {
		t.Errorf("nickname %q not reversible", got)
	}
	back := Nickname(r, got)
	if !HasNickname(back) {
		t.Errorf("reverse substitution gave unknown name %q", back)
	}
	// Unknown names pass through.
	if got := Nickname(r, "XYZZY"); got != "XYZZY" {
		t.Errorf("unknown name changed: %q", got)
	}
	if HasNickname("XYZZY") {
		t.Error("HasNickname invented an entry")
	}
	// Case-insensitive lookup, trimmed.
	if got := Nickname(r, " robert "); got == " robert " {
		t.Error("case/space-insensitive lookup failed")
	}
}

func TestCorruptorNicknameOnlyFirstName(t *testing.T) {
	cfg := Config{Nickname: 1}
	c := NewCorruptor(cfg, rng())
	r := makeRecord()
	r.SetName("first_name", "WILLIAM")
	r.SetName("last_name", "JAMES") // a formal name in the last slot stays
	c.Apply(&r)
	if r.GetName("first_name") == "WILLIAM" {
		t.Error("first name nickname not applied at rate 1")
	}
	if r.GetName("last_name") != "JAMES" {
		t.Errorf("nickname leaked into last_name: %q", r.GetName("last_name"))
	}
}
