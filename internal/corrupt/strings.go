package corrupt

import (
	"math/rand"
	"strings"
)

const letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"

// Typo applies one random keyboard-style edit to s: insertion, deletion,
// substitution, or transposition of two adjacent characters — exactly the
// edits with Damerau-Levenshtein distance 1 that the paper's error profile
// counts as typos. Strings shorter than 3 characters are returned unchanged
// (the profile only counts typos in values longer than two, §6.4).
func Typo(rng *rand.Rand, s string) string {
	r := []rune(s)
	if len(r) < 3 {
		return s
	}
	switch rng.Intn(4) {
	case 0: // insert
		pos := rng.Intn(len(r) + 1)
		c := rune(letters[rng.Intn(len(letters))])
		out := make([]rune, 0, len(r)+1)
		out = append(out, r[:pos]...)
		out = append(out, c)
		out = append(out, r[pos:]...)
		return string(out)
	case 1: // delete
		pos := rng.Intn(len(r))
		out := make([]rune, 0, len(r)-1)
		out = append(out, r[:pos]...)
		out = append(out, r[pos+1:]...)
		return string(out)
	case 2: // substitute with a different letter
		pos := rng.Intn(len(r))
		for {
			c := rune(letters[rng.Intn(len(letters))])
			if c != r[pos] {
				r[pos] = c
				break
			}
		}
		return string(r)
	default: // transpose two distinct adjacent runes
		for attempt := 0; attempt < 8; attempt++ {
			pos := rng.Intn(len(r) - 1)
			if r[pos] != r[pos+1] {
				r[pos], r[pos+1] = r[pos+1], r[pos]
				return string(r)
			}
		}
		// All-equal string: substitute instead.
		r[0] = rune(letters[rng.Intn(len(letters))])
		return string(r)
	}
}

// ocrPairs lists character confusions typical for optical character
// recognition; each pair maps a letter to a visually similar digit (or vice
// versa), matching the paper's OCR-error definition ("differ at those
// positions where one of them has a digit", §6.4).
var ocrPairs = map[rune]rune{
	'O': '0', '0': 'O',
	'I': '1', '1': 'I',
	'L': '1',
	'S': '5', '5': 'S',
	'B': '8', '8': 'B',
	'Z': '2', '2': 'Z',
	'G': '6', '6': 'G',
	'E': '3', '3': 'E',
	'T': '7', '7': 'T',
	'A': '4', '4': 'A',
}

// OCRError replaces one confusable character of s with its OCR look-alike.
// If s contains no confusable character it is returned unchanged.
func OCRError(rng *rand.Rand, s string) string {
	r := []rune(s)
	var positions []int
	for i, c := range r {
		if _, ok := ocrPairs[c]; ok {
			positions = append(positions, i)
		}
	}
	if len(positions) == 0 {
		return s
	}
	pos := positions[rng.Intn(len(positions))]
	r[pos] = ocrPairs[r[pos]]
	return string(r)
}

// phoneticSubs lists respellings that keep the Soundex code unchanged: the
// replacement letter carries the same Soundex digit (or both are
// vowels/ignored), so the resulting pair is flagged as a phonetic error by
// the paper's profile (same soundex, different spelling).
var phoneticSubs = map[rune][]rune{
	'C': {'K', 'S'},
	'K': {'C'},
	'S': {'C', 'Z'},
	'Z': {'S'},
	'D': {'T'},
	'T': {'D'},
	'M': {'N'},
	'N': {'M'},
	'F': {'V', 'P'},
	'V': {'F'},
	'P': {'B'},
	'B': {'P'},
	'A': {'E', 'O'},
	'E': {'A', 'I'},
	'I': {'E', 'Y'},
	'O': {'A', 'U'},
	'U': {'O'},
	'Y': {'I'},
}

// PhoneticError respells one character of s with a Soundex-equivalent
// letter. The first character is never touched (it anchors the Soundex
// code). Returns s unchanged if no substitutable character exists.
func PhoneticError(rng *rand.Rand, s string) string {
	r := []rune(s)
	var positions []int
	for i := 1; i < len(r); i++ {
		if _, ok := phoneticSubs[r[i]]; ok {
			positions = append(positions, i)
		}
	}
	if len(positions) == 0 {
		return s
	}
	pos := positions[rng.Intn(len(positions))]
	subs := phoneticSubs[r[pos]]
	r[pos] = subs[rng.Intn(len(subs))]
	return string(r)
}

// Abbreviate reduces s to its first letter, optionally followed by a period
// — the paper's abbreviation singleton ("a single letter, possibly followed
// by a punctuation mark", §6.4). Empty input stays empty.
func Abbreviate(rng *rand.Rand, s string) string {
	t := strings.TrimSpace(s)
	if t == "" {
		return s
	}
	first := string([]rune(t)[0])
	if rng.Intn(2) == 0 {
		return first + "."
	}
	return first
}

// TruncateTail cuts a random non-empty suffix off s, producing a value of
// which the original is a postfix-extension (the paper's prefix
// irregularity: one value is a prefix of the other). Values of length < 4
// are returned unchanged so the result stays recognizable.
func TruncateTail(rng *rand.Rand, s string) string {
	r := []rune(s)
	if len(r) < 4 {
		return s
	}
	keep := 2 + rng.Intn(len(r)-3) // keep in [2, len-2]
	return string(r[:keep])
}

// TruncateHead cuts a random non-empty prefix off s (postfix irregularity).
// Values shorter than 4 runes are returned unchanged.
func TruncateHead(rng *rand.Rand, s string) string {
	r := []rune(s)
	if len(r) < 4 {
		return s
	}
	drop := 1 + rng.Intn(len(r)-3) // drop in [1, len-3]
	return string(r[drop:])
}

// DropToken removes one random token from a multi-token value; the result is
// a token-subset of the original ("forgotten tokens"). Single-token values
// are returned unchanged.
func DropToken(rng *rand.Rand, s string) string {
	tokens := strings.Fields(s)
	if len(tokens) < 2 {
		return s
	}
	i := rng.Intn(len(tokens))
	return strings.Join(append(tokens[:i:i], tokens[i+1:]...), " ")
}

// TransposeTokens swaps two random tokens of a multi-token value (token
// transposition irregularity). Single-token values are returned unchanged.
func TransposeTokens(rng *rand.Rand, s string) string {
	tokens := strings.Fields(s)
	if len(tokens) < 2 {
		return s
	}
	i := rng.Intn(len(tokens))
	j := rng.Intn(len(tokens) - 1)
	if j >= i {
		j++
	}
	tokens[i], tokens[j] = tokens[j], tokens[i]
	return strings.Join(tokens, " ")
}

// FormatNoise changes only non-alphanumeric presentation: it flips a space
// to a hyphen or vice versa, or inserts a hyphen between two tokens — the
// paper's "different representation" irregularity. Values without any
// flippable position are returned unchanged.
func FormatNoise(rng *rand.Rand, s string) string {
	r := []rune(s)
	var seps []int
	for i, c := range r {
		if c == ' ' || c == '-' {
			seps = append(seps, i)
		}
	}
	if len(seps) > 0 {
		pos := seps[rng.Intn(len(seps))]
		if r[pos] == ' ' {
			r[pos] = '-'
		} else {
			r[pos] = ' '
		}
		return string(r)
	}
	// No separator: append a period (punctuation-only difference).
	if len(r) > 0 {
		return s + "."
	}
	return s
}

// WhitespacePad adds leading and/or trailing spaces, the distribution
// artifact the paper removes with trimming (§3.1.3).
func WhitespacePad(rng *rand.Rand, s string) string {
	lead := strings.Repeat(" ", rng.Intn(3))
	trail := strings.Repeat(" ", 1+rng.Intn(3))
	return lead + s + trail
}

// nicknamePairs maps formal first names to their common nicknames. Both
// directions apply: a voter registered as WILLIAM may re-register as BILL
// and vice versa — a classic duplicate-detection challenge, since the two
// forms share almost no characters.
var nicknamePairs = map[string][]string{
	"WILLIAM":     {"BILL", "WILL", "BILLY"},
	"ROBERT":      {"BOB", "ROB", "BOBBY"},
	"RICHARD":     {"DICK", "RICK"},
	"JAMES":       {"JIM", "JIMMY"},
	"JOHN":        {"JACK", "JOHNNY"},
	"MICHAEL":     {"MIKE"},
	"JOSEPH":      {"JOE", "JOEY"},
	"CHARLES":     {"CHUCK", "CHARLIE"},
	"THOMAS":      {"TOM", "TOMMY"},
	"CHRISTOPHER": {"CHRIS"},
	"DANIEL":      {"DAN", "DANNY"},
	"MATTHEW":     {"MATT"},
	"ANTHONY":     {"TONY"},
	"STEVEN":      {"STEVE"},
	"EDWARD":      {"ED", "TED", "EDDIE"},
	"KENNETH":     {"KEN", "KENNY"},
	"RONALD":      {"RON", "RONNIE"},
	"TIMOTHY":     {"TIM"},
	"LAWRENCE":    {"LARRY"},
	"GERALD":      {"JERRY"},
	"WALTER":      {"WALT"},
	"PATRICK":     {"PAT"},
	"PETER":       {"PETE"},
	"NICHOLAS":    {"NICK"},
	"BENJAMIN":    {"BEN"},
	"SAMUEL":      {"SAM"},
	"GREGORY":     {"GREG"},
	"ELIZABETH":   {"BETH", "LIZ", "BETTY", "BETSY"},
	"MARGARET":    {"PEGGY", "MEG", "MAGGIE"},
	"PATRICIA":    {"PAT", "PATTY", "TRISH"},
	"BARBARA":     {"BARB", "BARBIE"},
	"JENNIFER":    {"JEN", "JENNY"},
	"DEBORAH":     {"DEBBIE", "DEB"},
	"DEBRA":       {"DEBBIE", "DEB"},
	"SUSAN":       {"SUE", "SUSIE"},
	"KATHLEEN":    {"KATHY", "KATE"},
	"KATHERINE":   {"KATHY", "KATE", "KATIE"},
	"DOROTHY":     {"DOT", "DOTTIE"},
	"VIRGINIA":    {"GINNY"},
	"JACQUELINE":  {"JACKIE"},
	"KIMBERLY":    {"KIM"},
	"CYNTHIA":     {"CINDY"},
	"SANDRA":      {"SANDY"},
	"PAMELA":      {"PAM"},
	"CHRISTINE":   {"CHRIS", "CHRISSY"},
	"REBECCA":     {"BECKY"},
	"THERESA":     {"TERRY"},
	"TERESA":      {"TERRY"},
	"JUDITH":      {"JUDY"},
}

// nicknameReverse maps every nickname back to its formal forms, built once
// at init.
var nicknameReverse = buildNicknameReverse()

func buildNicknameReverse() map[string][]string {
	rev := map[string][]string{}
	for formal, nicks := range nicknamePairs {
		for _, n := range nicks {
			rev[n] = append(rev[n], formal)
		}
	}
	return rev
}

// Nickname substitutes a formal first name with a common nickname or vice
// versa. Names without a known alternative are returned unchanged. Case is
// preserved only as upper case (register style).
func Nickname(rng *rand.Rand, s string) string {
	key := strings.ToUpper(strings.TrimSpace(s))
	if nicks, ok := nicknamePairs[key]; ok {
		return nicks[rng.Intn(len(nicks))]
	}
	if formals, ok := nicknameReverse[key]; ok {
		return formals[rng.Intn(len(formals))]
	}
	return s
}

// HasNickname reports whether the name participates in the nickname table
// (in either direction).
func HasNickname(s string) bool {
	key := strings.ToUpper(strings.TrimSpace(s))
	if _, ok := nicknamePairs[key]; ok {
		return true
	}
	_, ok := nicknameReverse[key]
	return ok
}

// CaseNoise lower-cases or title-cases an upper-case value.
func CaseNoise(rng *rand.Rand, s string) string {
	if s == "" {
		return s
	}
	if rng.Intn(2) == 0 {
		return strings.ToLower(s)
	}
	lower := strings.ToLower(s)
	return strings.ToUpper(lower[:1]) + lower[1:]
}
