package core

import (
	"io"
	"os"

	"repro/internal/voter"
)

// IngestObserver receives the counters of a parallel snapshot import:
// rows decoded, records added, duplicates removed, new objects and the
// per-stage stall times of the pipeline (ingest_* names). *obs.Metrics
// implements it, so a serving process importing snapshots exposes ingest on
// GET /metrics next to the request metrics; the dependency points upward
// through this interface because core must not import the serving layers.
type IngestObserver interface {
	AddN(name string, n int64)
}

// IngestOptions tunes ImportSnapshotFileParallelOpts. The zero value of a
// field selects the default documented on it.
type IngestOptions struct {
	// Workers is the decode-worker and cluster-shard count; <= 0 selects
	// GOMAXPROCS, 1 falls back to the sequential import.
	Workers int
	// ChunkBytes is the line-aligned read block size; <= 0 selects 256 KiB.
	ChunkBytes int
	// Observer, when non-nil, receives the pipeline counters.
	Observer IngestObserver
}

// ImportSnapshotFileParallel streams one TSV snapshot file through the
// removal mode on a sharded worker pipeline (see pipeline.go). The resulting
// dataset and ImportStats are identical to ImportSnapshotFile for any worker
// count; workers <= 0 selects GOMAXPROCS and workers == 1 is exactly the
// sequential import.
func (d *Dataset) ImportSnapshotFileParallel(path string, workers int) (ImportStats, error) {
	return d.ImportSnapshotFileParallelOpts(path, IngestOptions{Workers: workers})
}

// ImportSnapshotFileParallelOpts is ImportSnapshotFileParallel with full
// pipeline tuning.
func (d *Dataset) ImportSnapshotFileParallelOpts(path string, opts IngestOptions) (ImportStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return ImportStats{}, err
	}
	defer f.Close()
	return d.importReaderParallel(f, opts, nil)
}

// importReaderSequential is the single-goroutine import shared by
// ImportSnapshotFile, the workers == 1 path of the parallel importer and
// (with a non-nil delta) the sequential delta apply.
func (d *Dataset) importReaderSequential(r io.Reader, dl *Delta) (ImportStats, error) {
	var imp *Import
	if _, err := voter.StreamTSV(r, func(rec voter.Record) error {
		if imp == nil {
			imp = d.BeginImport(rec.SnapshotDate())
		}
		imp.addTracked(rec, dl)
		return nil
	}); err != nil {
		return ImportStats{}, err
	}
	if imp == nil {
		imp = d.BeginImport("")
	}
	return imp.Close(), nil
}
