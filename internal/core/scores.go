package core

import "repro/internal/voter"

// PairScorer scores two records of the same cluster in [0, 1]. The
// plausibility and heterogeneity packages provide the concrete scorers; core
// only orchestrates when pairs are (incrementally) scored and where the
// results live.
type PairScorer func(a, b voter.Record) float64

// Aggregation folds a cluster's pair scores into one cluster score.
type Aggregation int

const (
	// AggMin: a cluster is only as sound as its worst pair (plausibility,
	// §6.2).
	AggMin Aggregation = iota
	// AggMean: cluster heterogeneity is the average pair heterogeneity
	// (§6.3).
	AggMean
)

// UpdateScores incrementally computes the version-similarity map of the
// given kind (Fig. 2, step 2): for every record not yet scored it computes
// the similarity to all previously existing records of the same cluster and
// stores them under the record's first version. Already-scored pairs are
// never recomputed — the record order inside a cluster never changes
// (§5.2).
func (d *Dataset) UpdateScores(kind string, scorer PairScorer) {
	d.UpdateScoresOn(kind, scorer, nil)
}

// UpdateScoresOn is UpdateScores restricted to the given NCIDs — the delta
// path's rescoring scope (Delta.Dirty). A nil slice means every cluster; an
// empty non-nil slice means none. NCIDs without a cluster are ignored.
// Because scoreCluster only ever computes missing pairs, scoring a subset
// now and the rest later yields the same maps as scoring everything at once.
func (d *Dataset) UpdateScoresOn(kind string, scorer PairScorer, ncids []string) {
	if ncids == nil {
		ncids = d.order
	}
	for _, id := range ncids {
		if c := d.clusters[id]; c != nil {
			scoreCluster(c, kind, scorer)
		}
	}
}

// scoredThrough returns the first record index of the cluster that has no
// stored scores for the kind yet.
func (c *Cluster) scoredThrough(kind string) int {
	vm := c.SimMaps[kind]
	if vm == nil {
		return 0
	}
	max := 0
	for _, byI := range vm {
		for i := range byI {
			if i+1 > max {
				max = i + 1
			}
		}
	}
	if max == 0 {
		// Only record 0 may have been seen; treat a non-empty map as
		// everything-unscored-from-1.
		if len(c.Records) > 0 {
			return 1
		}
	}
	return max
}

// PairScore returns the stored score of records i > j of the cluster and
// whether it exists.
func (c *Cluster) PairScore(kind string, i, j int) (float64, bool) {
	if i < j {
		i, j = j, i
	}
	vm := c.SimMaps[kind]
	if vm == nil {
		return 0, false
	}
	for _, byI := range vm {
		if row, ok := byI[i]; ok {
			if s, ok := row[j]; ok {
				return s, true
			}
		}
	}
	return 0, false
}

// ClusterScore folds the cluster's stored pair scores of a kind into one
// value. Clusters with fewer than two records (no pairs) return ok=false.
func (c *Cluster) ClusterScore(kind string, agg Aggregation) (float64, bool) {
	n := len(c.Records)
	if n < 2 {
		return 0, false
	}
	var sum float64
	count := 0
	min := 1.0
	for i := 1; i < n; i++ {
		for j := 0; j < i; j++ {
			s, ok := c.PairScore(kind, i, j)
			if !ok {
				continue
			}
			sum += s
			count++
			if s < min {
				min = s
			}
		}
	}
	if count == 0 {
		return 0, false
	}
	if agg == AggMin {
		return min, true
	}
	return sum / float64(count), true
}

// PairScores streams every stored pair score of a kind across the dataset.
func (d *Dataset) PairScores(kind string, fn func(c *Cluster, i, j int, score float64) bool) {
	for _, id := range d.order {
		c := d.clusters[id]
		n := len(c.Records)
		for i := 1; i < n; i++ {
			for j := 0; j < i; j++ {
				if s, ok := c.PairScore(kind, i, j); ok {
					if !fn(c, i, j, s) {
						return
					}
				}
			}
		}
	}
}

// ClusterScores returns the per-cluster aggregate of a kind for all clusters
// with at least one scored pair, in first-seen order.
func (d *Dataset) ClusterScores(kind string, agg Aggregation) []float64 {
	var out []float64
	for _, id := range d.order {
		if s, ok := d.clusters[id].ClusterScore(kind, agg); ok {
			out = append(out, s)
		}
	}
	return out
}

// Established score kinds. Plausibility stores similarities (1 = surely the
// same voter); the two heterogeneity kinds store similarities as well — the
// heterogeneity is their inverse, taken at read time — so that all three
// maps share the "similarity map" semantics of §5.2.
const (
	KindPlausibility = "plausibility"
	KindHeteroAll    = "heterogeneity_all"
	KindHeteroPerson = "heterogeneity_person"
)

// HeteroFromSim converts a stored similarity into a heterogeneity score.
func HeteroFromSim(sim float64) float64 { return 1 - sim }
