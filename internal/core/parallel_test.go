package core

import (
	"fmt"
	"testing"

	"repro/internal/voter"
)

// buildScoredInput creates a dataset with many multi-record clusters.
func buildScoredInput(n int) *Dataset {
	d := NewDataset(RemoveTrimmed)
	var recs []voter.Record
	for c := 0; c < n; c++ {
		for v := 0; v < 3; v++ {
			r := voter.NewRecord()
			r.SetName("ncid", fmt.Sprintf("C%05d", c))
			r.SetName("first_name", fmt.Sprintf("NAME%d", c))
			r.SetName("last_name", fmt.Sprintf("LAST%d-%d", c, v))
			recs = append(recs, r)
		}
	}
	d.ImportSnapshot(voter.Snapshot{Date: "2008-01-01", Records: recs})
	return d
}

func TestParallelMatchesSequential(t *testing.T) {
	scorer := func(a, b voter.Record) float64 {
		if a.GetName("last_name") == b.GetName("last_name") {
			return 1
		}
		return 0.5
	}
	seq := buildScoredInput(200)
	seq.UpdateScores("k", scorer)
	par := buildScoredInput(200)
	par.UpdateScoresParallel("k", scorer, 8)

	if seq.NumClusters() != par.NumClusters() {
		t.Fatal("cluster counts differ")
	}
	for _, id := range seq.NCIDs() {
		a, b := seq.Cluster(id), par.Cluster(id)
		for i := 1; i < len(a.Records); i++ {
			for j := 0; j < i; j++ {
				sa, oka := a.PairScore("k", i, j)
				sb, okb := b.PairScore("k", i, j)
				if oka != okb || sa != sb {
					t.Fatalf("cluster %s pair (%d,%d): %v/%v vs %v/%v", id, i, j, sa, oka, sb, okb)
				}
			}
		}
	}
}

func TestParallelSingleWorkerFallsBack(t *testing.T) {
	d := buildScoredInput(10)
	d.UpdateScoresParallel("k", func(a, b voter.Record) float64 { return 0.7 }, 1)
	if s, ok := d.Cluster("C00000").PairScore("k", 1, 0); !ok || s != 0.7 {
		t.Errorf("score = %v, %v", s, ok)
	}
}

func TestParallelIncrementalAcrossVersions(t *testing.T) {
	d := buildScoredInput(50)
	d.UpdateScoresParallel("k", func(a, b voter.Record) float64 { return 1 }, 4)
	d.Publish()
	// Second round with a contradicting scorer: old pairs must keep their
	// stored value.
	var recs []voter.Record
	for c := 0; c < 50; c++ {
		r := voter.NewRecord()
		r.SetName("ncid", fmt.Sprintf("C%05d", c))
		r.SetName("first_name", "NEW")
		r.SetName("last_name", fmt.Sprintf("NEW%d", c))
		recs = append(recs, r)
	}
	d.ImportSnapshot(voter.Snapshot{Date: "2009-01-01", Records: recs})
	d.UpdateScoresParallel("k", func(a, b voter.Record) float64 { return 0.25 }, 4)
	d.Publish()

	c := d.Cluster("C00000")
	if s, _ := c.PairScore("k", 1, 0); s != 1 {
		t.Errorf("old pair recomputed: %v", s)
	}
	if s, _ := c.PairScore("k", 3, 0); s != 0.25 {
		t.Errorf("new pair = %v", s)
	}
}

func BenchmarkUpdateScoresSequential(b *testing.B) {
	scorer := func(a, b voter.Record) float64 { return 0.5 }
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := buildScoredInput(500)
		b.StartTimer()
		d.UpdateScores("k", scorer)
	}
}

func BenchmarkUpdateScoresParallel(b *testing.B) {
	scorer := func(a, b voter.Record) float64 { return 0.5 }
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := buildScoredInput(500)
		b.StartTimer()
		d.UpdateScoresParallel("k", scorer, 0)
	}
}
