package core

import (
	"runtime"
	"sync"

	"repro/internal/docstore"
)

// FromDocDBParallel is FromDocDB with the cluster documents parsed on a
// worker pool — the store-to-dataset direction of every scoring, profiling
// and customization pass, and the dominant cost of reopening a saved
// corpus. Cluster parsing is embarrassingly parallel (each document is
// independent); the results land in a slice indexed by the document's
// position and are committed in that order, so the dataset's cluster order
// — and everything derived from it, such as deterministic sampling — is
// identical to the sequential path for any worker count. workers <= 0
// selects GOMAXPROCS.
func FromDocDBParallel(db *docstore.DB, workers int) (*Dataset, error) {
	d, err := datasetFromMeta(db)
	if err != nil {
		return nil, err
	}
	docs := db.Collection(ClustersCollection).Find(nil)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	workers = min(workers, len(docs))

	clusters := make([]*Cluster, len(docs))
	if workers <= 1 {
		for i, doc := range docs {
			if clusters[i], err = clusterFromDoc(doc); err != nil {
				return nil, err
			}
		}
	} else {
		errs := make([]error, workers)
		var wg sync.WaitGroup
		block := (len(docs) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * block
			hi := min(lo+block, len(docs))
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					c, err := clusterFromDoc(docs[i])
					if err != nil {
						errs[w] = err
						return
					}
					clusters[i] = c
				}
			}(w, lo, hi)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}

	for _, c := range clusters {
		d.clusters[c.NCID] = c
		d.order = append(d.order, c.NCID)
	}
	return d, nil
}
