package core

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/voter"
)

// TestFromDocDBParallelMatchesSequential pins the parallel store loader to
// the sequential one: same cluster order, same contents, for every worker
// count on the race ladder.
func TestFromDocDBParallelMatchesSequential(t *testing.T) {
	d := NewDataset(RemoveTrimmed)
	var recs []voter.Record
	for i := 0; i < 60; i++ {
		recs = append(recs,
			rec(fmt.Sprintf("P%03d", i), "ANNA", fmt.Sprintf("SMITH%d", i), ""),
			rec(fmt.Sprintf("P%03d", i), "ANA", fmt.Sprintf("SMITH%d", i), ""))
	}
	d.ImportSnapshot(snap("2008-01-01", recs...))
	d.UpdateScores("test", nameSim)
	d.Publish()
	db := d.ToDocDB()

	want, err := FromDocDB(db)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 7, runtime.GOMAXPROCS(0)} {
		got, err := FromDocDBParallel(db, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got.NCIDs(), want.NCIDs()) {
			t.Fatalf("workers=%d: cluster order diverged", workers)
		}
		for _, id := range want.NCIDs() {
			if !reflect.DeepEqual(got.Cluster(id), want.Cluster(id)) {
				t.Fatalf("workers=%d: cluster %s diverged", workers, id)
			}
		}
		if got.NumRecords() != want.NumRecords() {
			t.Fatalf("workers=%d: %d records, want %d", workers, got.NumRecords(), want.NumRecords())
		}
	}
}
