package core

import (
	"runtime"
	"sync"
)

// UpdateScoresParallel is UpdateScores with the per-cluster work spread over
// a worker pool. Clusters are independent — each owns its version-similarity
// map — so the only coordination is the work queue. workers <= 0 selects
// GOMAXPROCS. The result is identical to the sequential UpdateScores.
//
// The scorer is shared by all workers; it must be safe for concurrent use.
// Scorers that carry per-call scratch state (the allocation-free
// plausibility and heterogeneity scorers) go through
// UpdateScoresParallelFactory instead.
func (d *Dataset) UpdateScoresParallel(kind string, scorer PairScorer, workers int) {
	d.UpdateScoresParallelFactory(kind, func() PairScorer { return scorer }, workers)
}

// UpdateScoresParallelFactory is UpdateScoresParallel with one scorer
// instance per worker: the factory runs once on each worker goroutine, so a
// scorer may own mutable scratch buffers (DP rows, value slices) without
// any locking. Cluster results are written only into that cluster's own
// similarity map, so for deterministic scorers the outcome is identical to
// sequential for any worker count.
func (d *Dataset) UpdateScoresParallelFactory(kind string, factory func() PairScorer, workers int) {
	d.UpdateScoresParallelFactoryOn(kind, factory, workers, nil)
}

// UpdateScoresParallelFactoryOn is UpdateScoresParallelFactory restricted to
// the given NCIDs (Delta.Dirty's rescoring scope): nil means every cluster,
// an empty non-nil slice means none, unknown NCIDs are ignored. Identical to
// UpdateScoresOn for any worker count.
func (d *Dataset) UpdateScoresParallelFactoryOn(kind string, factory func() PairScorer, workers int, ncids []string) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		d.UpdateScoresOn(kind, factory(), ncids)
		return
	}
	if ncids == nil {
		ncids = d.order
	}
	jobs := make(chan *Cluster, workers*2)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scorer := factory()
			for c := range jobs {
				scoreCluster(c, kind, scorer)
			}
		}()
	}
	for _, id := range ncids {
		if c := d.clusters[id]; c != nil {
			jobs <- c
		}
	}
	close(jobs)
	wg.Wait()
}

// scoreCluster computes the missing pair scores of one cluster (the body of
// UpdateScores, factored out for the worker pool).
func scoreCluster(c *Cluster, kind string, scorer PairScorer) {
	vm := c.SimMaps[kind]
	if vm == nil {
		vm = VersionSimMap{}
		c.SimMaps[kind] = vm
	}
	from := c.scoredThrough(kind)
	for i := from; i < len(c.Records); i++ {
		if i == 0 {
			continue
		}
		version := c.Records[i].FirstVersion
		byI := vm[version]
		if byI == nil {
			byI = map[int]map[int]float64{}
			vm[version] = byI
		}
		row := map[int]float64{}
		for j := 0; j < i; j++ {
			row[j] = scorer(c.Records[i].Rec, c.Records[j].Rec)
		}
		byI[i] = row
	}
}
