package core

import (
	"math"
	"testing"

	"repro/internal/docstore"
	"repro/internal/simil"
	"repro/internal/voter"
)

// rec builds a record with the given ncid, names and snapshot date.
func rec(ncid, first, last, date string) voter.Record {
	r := voter.NewRecord()
	r.SetName("ncid", ncid)
	r.SetName("first_name", first)
	r.SetName("last_name", last)
	r.SetName("snapshot_dt", date)
	r.SetName("age", "40")
	return r
}

func snap(date string, recs ...voter.Record) voter.Snapshot {
	for i := range recs {
		recs[i].SetName("snapshot_dt", date)
	}
	return voter.Snapshot{Date: date, Records: recs}
}

func TestImportBuildsClusters(t *testing.T) {
	d := NewDataset(RemoveTrimmed)
	st := d.ImportSnapshot(snap("2008-01-01",
		rec("A1", "JOHN", "SMITH", ""),
		rec("A1", "JON", "SMITH", ""),
		rec("B2", "MARY", "JONES", ""),
	))
	if st.Rows != 3 || st.NewRecords != 3 || st.NewObjects != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if d.NumClusters() != 2 || d.NumRecords() != 3 {
		t.Fatalf("clusters=%d records=%d", d.NumClusters(), d.NumRecords())
	}
	if d.NumPairs() != 1 {
		t.Errorf("pairs = %d, want 1", d.NumPairs())
	}
	c := d.Cluster("A1")
	if c == nil || len(c.Records) != 2 {
		t.Fatalf("cluster A1 = %+v", c)
	}
}

func TestExactDuplicateRemovalAcrossSnapshots(t *testing.T) {
	d := NewDataset(RemoveTrimmed)
	d.ImportSnapshot(snap("2008-01-01", rec("A1", "JOHN", "SMITH", "")))
	st := d.ImportSnapshot(snap("2009-01-01", rec("A1", "JOHN", "SMITH", "")))
	if st.NewRecords != 0 {
		t.Errorf("identical row counted as new: %+v", st)
	}
	if d.NumRecords() != 1 {
		t.Errorf("records = %d, want 1 (deduplicated)", d.NumRecords())
	}
	// The surviving record lists both snapshot dates.
	e := d.Cluster("A1").Records[0]
	if len(e.Snapshots) != 2 || e.Snapshots[0] != "2008-01-01" || e.Snapshots[1] != "2009-01-01" {
		t.Errorf("snapshot array = %v", e.Snapshots)
	}
}

func TestRemoveNoneKeepsEverything(t *testing.T) {
	d := NewDataset(RemoveNone)
	d.ImportSnapshot(snap("2008-01-01", rec("A1", "JOHN", "SMITH", "")))
	st := d.ImportSnapshot(snap("2009-01-01", rec("A1", "JOHN", "SMITH", "")))
	if d.NumRecords() != 2 {
		t.Errorf("RemoveNone records = %d, want 2", d.NumRecords())
	}
	if st.NewRecords != 0 {
		t.Errorf("duplicate row still counted as new record: %+v", st)
	}
}

func TestWhitespaceHandlingPerMode(t *testing.T) {
	padded := rec("A1", "JOHN", "SMITH  ", "")
	plain := rec("A1", "JOHN", "SMITH", "")

	exact := NewDataset(RemoveExact)
	exact.ImportSnapshot(snap("2008-01-01", plain))
	exact.ImportSnapshot(snap("2009-01-01", padded))
	if exact.NumRecords() != 2 {
		t.Errorf("exact mode should keep the whitespace variant: %d", exact.NumRecords())
	}

	trimmed := NewDataset(RemoveTrimmed)
	trimmed.ImportSnapshot(snap("2008-01-01", plain))
	trimmed.ImportSnapshot(snap("2009-01-01", padded))
	if trimmed.NumRecords() != 1 {
		t.Errorf("trimming mode should drop the whitespace variant: %d", trimmed.NumRecords())
	}
}

func TestPersonDataModeIgnoresDistricts(t *testing.T) {
	a := rec("A1", "JOHN", "SMITH", "")
	b := rec("A1", "JOHN", "SMITH", "")
	b.SetName("nc_house_desc", "NC HOUSE DISTRICT 64")

	trimmed := NewDataset(RemoveTrimmed)
	trimmed.ImportSnapshot(snap("2008-01-01", a))
	trimmed.ImportSnapshot(snap("2009-01-01", b))
	if trimmed.NumRecords() != 2 {
		t.Errorf("trimming keeps district variants: %d", trimmed.NumRecords())
	}

	person := NewDataset(RemovePersonData)
	person.ImportSnapshot(snap("2008-01-01", a.Clone()))
	person.ImportSnapshot(snap("2009-01-01", b.Clone()))
	if person.NumRecords() != 1 {
		t.Errorf("person mode should ignore district variants: %d", person.NumRecords())
	}
}

func TestAgeAndDateChangesNeverCreateNewRecords(t *testing.T) {
	a := rec("A1", "JOHN", "SMITH", "")
	b := rec("A1", "JOHN", "SMITH", "")
	b.SetName("age", "41")
	d := NewDataset(RemoveExact)
	d.ImportSnapshot(snap("2008-01-01", a))
	st := d.ImportSnapshot(snap("2009-01-01", b))
	if st.NewRecords != 0 || d.NumRecords() != 1 {
		t.Errorf("aging created a new record: %+v records=%d", st, d.NumRecords())
	}
}

func TestYearlyStats(t *testing.T) {
	d := NewDataset(RemoveTrimmed)
	d.ImportSnapshot(snap("2008-01-01", rec("A1", "J", "S", ""), rec("B2", "M", "K", "")))
	d.ImportSnapshot(snap("2008-11-03", rec("A1", "J", "S", ""), rec("C3", "P", "Q", "")))
	d.ImportSnapshot(snap("2009-01-01", rec("A1", "JX", "S", "")))
	ys := d.YearlyStats()
	if len(ys) != 2 {
		t.Fatalf("years = %d", len(ys))
	}
	y08 := ys[0]
	if y08.Year != 2008 || y08.Snapshots != 2 || y08.TotalRecords != 4 {
		t.Errorf("2008 = %+v", y08)
	}
	if y08.NewRecords != 3 || y08.NewObjects != 3 {
		t.Errorf("2008 new = %+v", y08)
	}
	y09 := ys[1]
	if y09.NewRecords != 1 || y09.NewObjects != 0 {
		t.Errorf("2009 = %+v", y09)
	}
	if math.Abs(y09.NewRecordRate-1.0) > 1e-9 {
		t.Errorf("2009 rate = %v", y09.NewRecordRate)
	}
}

func TestStatsTable2Row(t *testing.T) {
	none := NewDataset(RemoveNone)
	trim := NewDataset(RemoveTrimmed)
	snaps := []voter.Snapshot{
		snap("2008-01-01", rec("A1", "JOHN", "SMITH", ""), rec("B2", "M", "K", "")),
		snap("2009-01-01", rec("A1", "JOHN", "SMITH", ""), rec("B2", "M", "K", "")),
		snap("2010-01-01", rec("A1", "JOHNNY", "SMITH", ""), rec("B2", "M", "K", "")),
	}
	for _, s := range snaps {
		none.ImportSnapshot(s)
		trim.ImportSnapshot(s)
	}
	nonePairs := none.NumPairs()
	if nonePairs != 3+3 { // two clusters of size 3
		t.Fatalf("none pairs = %d", nonePairs)
	}
	gs := trim.Stats(nonePairs)
	if gs.Records != 3 { // A1: 2 variants, B2: 1
		t.Errorf("records = %d", gs.Records)
	}
	if gs.DuplicatePairs != 1 {
		t.Errorf("pairs = %d", gs.DuplicatePairs)
	}
	if gs.RemovedRecords != 3 || math.Abs(gs.RemovedRecPct-0.5) > 1e-9 {
		t.Errorf("removed = %d (%.2f)", gs.RemovedRecords, gs.RemovedRecPct)
	}
	if gs.RemovedPairs != 5 {
		t.Errorf("removed pairs = %d", gs.RemovedPairs)
	}
	if gs.MaxClusterSize != 2 || math.Abs(gs.AvgClusterSize-1.5) > 1e-9 {
		t.Errorf("cluster sizes = %d / %v", gs.MaxClusterSize, gs.AvgClusterSize)
	}
}

func TestClusterSizeHistogram(t *testing.T) {
	d := NewDataset(RemoveTrimmed)
	d.ImportSnapshot(snap("2008-01-01",
		rec("A1", "A", "X", ""), rec("A1", "B", "X", ""),
		rec("B2", "C", "Y", ""),
	))
	h := d.ClusterSizeHistogram()
	if h[2] != 1 || h[1] != 1 {
		t.Errorf("histogram = %v", h)
	}
}

// nameSim is a simple test scorer.
func nameSim(a, b voter.Record) float64 {
	return simil.DamerauLevenshteinSimilarity(
		a.GetName("first_name"), b.GetName("first_name"))
}

func TestUpdateScoresIncremental(t *testing.T) {
	d := NewDataset(RemoveTrimmed)
	d.ImportSnapshot(snap("2008-01-01",
		rec("A1", "JOHN", "SMITH", ""),
		rec("A1", "JON", "SMITH", ""),
	))
	d.UpdateScores("test", nameSim)
	v1 := d.Publish()
	if v1 != 1 {
		t.Fatalf("version = %d", v1)
	}
	c := d.Cluster("A1")
	s10, ok := c.PairScore("test", 1, 0)
	if !ok || s10 <= 0 || s10 >= 1 {
		t.Fatalf("pair score = %v, %v", s10, ok)
	}
	// Symmetric lookup.
	if s01, ok := c.PairScore("test", 0, 1); !ok || s01 != s10 {
		t.Errorf("symmetric lookup = %v, %v", s01, ok)
	}

	// Second import round: only new pairs are scored, old scores unchanged.
	d.ImportSnapshot(snap("2009-01-01", rec("A1", "JOHNNY", "SMITH", "")))
	d.UpdateScores("test", func(a, b voter.Record) float64 {
		// A scorer that would disagree with the original on old pairs; if
		// old pairs were recomputed the stored score would change.
		return 0.25
	})
	d.Publish()
	if s, _ := c.PairScore("test", 1, 0); s != s10 {
		t.Errorf("old pair was recomputed: %v -> %v", s10, s)
	}
	if s, ok := c.PairScore("test", 2, 0); !ok || s != 0.25 {
		t.Errorf("new pair score = %v, %v", s, ok)
	}
	if s, ok := c.PairScore("test", 2, 1); !ok || s != 0.25 {
		t.Errorf("new pair score = %v, %v", s, ok)
	}
}

func TestClusterScoreAggregations(t *testing.T) {
	d := NewDataset(RemoveTrimmed)
	d.ImportSnapshot(snap("2008-01-01",
		rec("A1", "AAAA", "X", ""), rec("A1", "AAAB", "X", ""), rec("A1", "ZZZZ", "X", ""),
	))
	d.UpdateScores("test", nameSim)
	c := d.Cluster("A1")
	min, ok := c.ClusterScore("test", AggMin)
	if !ok || min != 0 {
		t.Errorf("min = %v, %v", min, ok)
	}
	mean, ok := c.ClusterScore("test", AggMean)
	if !ok || mean <= min || mean >= 1 {
		t.Errorf("mean = %v", mean)
	}
	// Singleton clusters have no score.
	d2 := NewDataset(RemoveTrimmed)
	d2.ImportSnapshot(snap("2008-01-01", rec("B1", "A", "B", "")))
	d2.UpdateScores("test", nameSim)
	if _, ok := d2.Cluster("B1").ClusterScore("test", AggMin); ok {
		t.Error("singleton cluster scored")
	}
}

func TestPairScoresStream(t *testing.T) {
	d := NewDataset(RemoveTrimmed)
	d.ImportSnapshot(snap("2008-01-01",
		rec("A1", "A", "X", ""), rec("A1", "B", "X", ""),
		rec("B2", "C", "Y", ""), rec("B2", "D", "Y", ""),
	))
	d.UpdateScores("test", nameSim)
	n := 0
	d.PairScores("test", func(c *Cluster, i, j int, s float64) bool {
		n++
		return true
	})
	if n != 2 {
		t.Errorf("streamed %d pair scores, want 2", n)
	}
	// Early stop.
	n = 0
	d.PairScores("test", func(c *Cluster, i, j int, s float64) bool {
		n++
		return false
	})
	if n != 1 {
		t.Errorf("early stop streamed %d", n)
	}
}

func TestReconstructVersion(t *testing.T) {
	d := NewDataset(RemoveTrimmed)
	d.ImportSnapshot(snap("2008-01-01", rec("A1", "JOHN", "SMITH", "")))
	d.UpdateScores("test", nameSim)
	d.Publish()
	d.ImportSnapshot(snap("2009-01-01", rec("A1", "JON", "SMITH", ""), rec("B2", "M", "K", "")))
	d.UpdateScores("test", nameSim)
	d.Publish()

	v1 := d.ReconstructVersion(1)
	if v1.NumRecords() != 1 || v1.NumClusters() != 1 {
		t.Errorf("v1 = %d records / %d clusters", v1.NumRecords(), v1.NumClusters())
	}
	v2 := d.ReconstructVersion(2)
	if v2.NumRecords() != 3 || v2.NumClusters() != 2 {
		t.Errorf("v2 = %d records / %d clusters", v2.NumRecords(), v2.NumClusters())
	}
	// v1 contains no cross-version scores.
	if _, ok := v1.Cluster("A1").ClusterScore("test", AggMin); ok {
		t.Error("v1 has pair scores for a singleton")
	}
	// v2 keeps the score between record 0 (v1) and record 1 (v2).
	if _, ok := v2.Cluster("A1").PairScore("test", 1, 0); !ok {
		t.Error("v2 lost the cross-version pair score")
	}
	// The view is monotone: v1 records are a subset of v2 records.
	if v1.Cluster("A1").Records[0].Rec.GetName("first_name") != "JOHN" {
		t.Error("v1 record mismatch")
	}
}

func TestSnapshotRange(t *testing.T) {
	d := NewDataset(RemoveTrimmed)
	d.ImportSnapshot(snap("2008-01-01", rec("A1", "JOHN", "SMITH", "")))
	d.ImportSnapshot(snap("2009-01-01", rec("A1", "JOHN", "SMITH", ""), rec("B2", "M", "K", "")))
	d.ImportSnapshot(snap("2010-01-01", rec("C3", "Z", "W", "")))

	early := d.SnapshotRange("2008-01-01", "2008-12-31")
	if early.NumRecords() != 1 || early.Cluster("A1") == nil {
		t.Errorf("early range = %d records", early.NumRecords())
	}
	mid := d.SnapshotRange("2009-01-01", "2009-12-31")
	// A1's single record also occurred in 2009, so it is included.
	if mid.NumRecords() != 2 {
		t.Errorf("mid range = %d records, want 2", mid.NumRecords())
	}
	late := d.SnapshotRange("2010-01-01", "2010-12-31")
	if late.NumRecords() != 1 || late.Cluster("C3") == nil {
		t.Errorf("late range = %d records", late.NumRecords())
	}
}

func TestDocDBRoundTrip(t *testing.T) {
	d := NewDataset(RemoveTrimmed)
	padded := rec("A1", "JOHN", "SMITH  ", "")
	d.ImportSnapshot(snap("2008-01-01", padded, rec("A1", "JON", "SMITH", "")))
	d.UpdateScores("test", nameSim)
	d.Publish()
	d.ImportSnapshot(snap("2009-01-01", rec("B2", "MARY", "JONES", "")))
	d.UpdateScores("test", nameSim)
	d.Publish()

	db := d.ToDocDB()
	got, err := FromDocDB(db)
	if err != nil {
		t.Fatal(err)
	}
	if got.Mode != d.Mode {
		t.Errorf("mode = %v", got.Mode)
	}
	if got.NumRecords() != d.NumRecords() || got.NumClusters() != d.NumClusters() {
		t.Fatalf("round trip: %d/%d records, %d/%d clusters",
			got.NumRecords(), d.NumRecords(), got.NumClusters(), d.NumClusters())
	}
	// Whitespace survives the sparse storage.
	if got.Cluster("A1").Records[0].Rec.GetName("last_name") != "SMITH  " {
		t.Error("whitespace lost in document storage")
	}
	// Hashes and first versions survive.
	for _, id := range d.NCIDs() {
		a, b := d.Cluster(id), got.Cluster(id)
		for i := range a.Records {
			if a.Records[i].Hash != b.Records[i].Hash {
				t.Fatalf("hash mismatch in %s[%d]", id, i)
			}
			if a.Records[i].FirstVersion != b.Records[i].FirstVersion {
				t.Fatalf("first version mismatch in %s[%d]", id, i)
			}
		}
	}
	// Scores survive.
	s1, ok1 := d.Cluster("A1").PairScore("test", 1, 0)
	s2, ok2 := got.Cluster("A1").PairScore("test", 1, 0)
	if !ok1 || !ok2 || s1 != s2 {
		t.Errorf("scores lost: %v/%v %v/%v", s1, ok1, s2, ok2)
	}
	// Versions survive.
	if len(got.Versions()) != 2 || got.Versions()[1].Number != 2 {
		t.Errorf("versions = %+v", got.Versions())
	}
	// Import stats survive.
	if len(got.Imports()) != 2 || got.Imports()[0].Rows != 2 {
		t.Errorf("imports = %+v", got.Imports())
	}
	// Empty values were stored sparsely: the cluster doc omits them.
	doc := db.Collection(ClustersCollection).Get("A1")
	recs, _ := doc["records"].([]any)
	first, _ := recs[0].(map[string]any)
	if person, ok := first["person"].(map[string]any); ok {
		if _, has := person["midl_name"]; has {
			t.Error("empty attribute stored in document")
		}
	}
}

func TestDocDBPersistenceRoundTrip(t *testing.T) {
	d := NewDataset(RemovePersonData)
	d.ImportSnapshot(snap("2008-01-01", rec("A1", "JOHN", "SMITH", ""), rec("A1", "JON", "SMITH", "")))
	d.UpdateScores("test", nameSim)
	d.Publish()

	dir := t.TempDir()
	if err := d.ToDocDB().Save(dir); err != nil {
		t.Fatal(err)
	}
	db, err := docstore.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromDocDB(db)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRecords() != 2 {
		t.Errorf("persisted records = %d", got.NumRecords())
	}
	if s, ok := got.Cluster("A1").PairScore("test", 1, 0); !ok || s <= 0 {
		t.Errorf("persisted score = %v, %v", s, ok)
	}
}

func TestDecodeHash(t *testing.T) {
	var h voter.Hash
	for i := range h {
		h[i] = byte(i * 7)
	}
	got, ok := decodeHash(HashHex(h))
	if !ok || got != h {
		t.Errorf("decodeHash round trip failed")
	}
	if _, ok := decodeHash("zz"); ok {
		t.Error("decodeHash accepted junk")
	}
	if _, ok := decodeHash("abcd"); ok {
		t.Error("decodeHash accepted short input")
	}
}
