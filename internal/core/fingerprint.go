package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
)

// ErrStaleIndex reports that a fingerprint index disagrees with the dataset
// it claims to describe — the delta a caller is applying was computed
// against a different base state.
var ErrStaleIndex = errors.New("stale fingerprint index")

// ClusterFP is the per-NCID fingerprint of a cluster's reproducibility
// state: how many record versions it holds, the latest snapshot date that
// confirmed any of them, and a fold over every record's identity metadata
// (hash, first version, snapshot-list length, last snapshot date). Two
// clusters with equal fingerprints hold the same records at the same
// versions with the same last-seen stamps; record values themselves need no
// folding because a record's content is fixed by its hash.
type ClusterFP struct {
	Records  int
	LastSeen string
	FP       uint64
}

// FingerprintIndex maps every NCID of a dataset to its ClusterFP. It is the
// delta layer's memory of the base state: ApplySnapshotDelta validates each
// first-touched cluster against it (catching a caller whose index belongs
// to a different dataset generation) and refreshes the touched entries
// afterwards, so one index can follow a dataset across many delta rounds.
// The index is derived state — the correctness of the touched/dirty sets
// never depends on it (they come from live pre-apply classification).
type FingerprintIndex struct {
	fps map[string]ClusterFP
}

// BuildFingerprintIndex fingerprints every cluster of the dataset.
func BuildFingerprintIndex(d *Dataset) *FingerprintIndex {
	ix := &FingerprintIndex{fps: make(map[string]ClusterFP, d.NumClusters())}
	d.Clusters(func(c *Cluster) bool {
		ix.fps[c.NCID] = clusterFP(c)
		return true
	})
	return ix
}

// Len returns the number of indexed clusters.
func (ix *FingerprintIndex) Len() int { return len(ix.fps) }

// Lookup returns the fingerprint of an NCID, and whether it is indexed.
func (ix *FingerprintIndex) Lookup(ncid string) (ClusterFP, bool) {
	fp, ok := ix.fps[ncid]
	return fp, ok
}

// Refresh re-fingerprints the given NCIDs against the dataset's current
// state. NCIDs without a cluster are dropped from the index.
func (ix *FingerprintIndex) Refresh(d *Dataset, ncids []string) {
	for _, id := range ncids {
		if c := d.Cluster(id); c != nil {
			ix.fps[id] = clusterFP(c)
		} else {
			delete(ix.fps, id)
		}
	}
}

// Diff returns the NCIDs whose fingerprints differ between the two indexes
// (including NCIDs present in only one), sorted. Diffing the base index
// against a post-apply rebuild yields exactly the clusters whose stored
// state changed — the specification the delta tests pin Touched against.
func (ix *FingerprintIndex) Diff(other *FingerprintIndex) []string {
	out := map[string]bool{}
	for id, fp := range ix.fps {
		if ofp, ok := other.fps[id]; !ok || ofp != fp {
			out[id] = true
		}
	}
	for id := range other.fps {
		if _, ok := ix.fps[id]; !ok {
			out[id] = true
		}
	}
	return sortedSet(out)
}

// Verify checks the whole index against the dataset and returns an
// ErrStaleIndex error naming the first divergent NCID, or nil.
func (ix *FingerprintIndex) Verify(d *Dataset) error {
	if ix.Len() != d.NumClusters() {
		return fmt.Errorf("core: %w: index holds %d clusters, dataset %d",
			ErrStaleIndex, ix.Len(), d.NumClusters())
	}
	var bad []string
	d.Clusters(func(c *Cluster) bool {
		if !ix.matches(c.NCID, c) {
			bad = append(bad, c.NCID)
		}
		return true
	})
	if len(bad) > 0 {
		sort.Strings(bad)
		return fmt.Errorf("core: %w: %d clusters diverged (first: %s)",
			ErrStaleIndex, len(bad), bad[0])
	}
	return nil
}

// matches reports whether the index's view of an NCID agrees with the
// cluster's current state. A brand-new cluster (no records yet) matches iff
// the NCID is unindexed.
func (ix *FingerprintIndex) matches(ncid string, c *Cluster) bool {
	fp, ok := ix.fps[ncid]
	if c == nil || len(c.Records) == 0 {
		return !ok
	}
	return ok && fp == clusterFP(c)
}

// clusterFP folds one cluster's identity metadata into its fingerprint.
func clusterFP(c *Cluster) ClusterFP {
	h := fnv.New64a()
	var buf [8]byte
	writeInt := func(n int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(n))
		h.Write(buf[:])
	}
	fp := ClusterFP{Records: len(c.Records)}
	for i := range c.Records {
		e := &c.Records[i]
		h.Write(e.Hash[:])
		writeInt(e.FirstVersion)
		writeInt(len(e.Snapshots))
		var last string
		if n := len(e.Snapshots); n > 0 {
			last = e.Snapshots[n-1]
		}
		h.Write([]byte(last))
		if last > fp.LastSeen {
			fp.LastSeen = last
		}
	}
	fp.FP = h.Sum64()
	return fp
}
