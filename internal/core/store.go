package core

import (
	"fmt"
	"strconv"

	"repro/internal/docstore"
	"repro/internal/voter"
)

// Materialization of the dataset into the document store, following the
// paper's layout (§5): one document per person (duplicate cluster) holding
// an array with one sub-document per record — itself split into person,
// district, election and meta parts — plus a cluster-meta sub-document with
// the record hashes, per-snapshot insert counts, per-record snapshot arrays
// and first-version fields, and the version-similarity maps. Only non-empty
// attribute values are stored, so the sparse district columns cost nothing.

// ClustersCollection is the collection name used for cluster documents.
const ClustersCollection = "clusters"

// MetaCollection is the collection name for dataset-level metadata.
const MetaCollection = "dataset"

// ToDocDB materializes the dataset into a fresh document database.
func (d *Dataset) ToDocDB() *docstore.DB {
	db := docstore.NewDB()
	col := db.Collection(ClustersCollection)
	for _, id := range d.order {
		if err := col.Insert(clusterDoc(d.clusters[id])); err != nil {
			// Cluster ids are unique by construction; an error here is a
			// programming bug.
			panic(err)
		}
	}
	meta := db.Collection(MetaCollection)
	versions := make([]any, 0, len(d.versions))
	for _, v := range d.versions {
		snaps := make([]any, len(v.Snapshots))
		for i, s := range v.Snapshots {
			snaps[i] = s
		}
		versions = append(versions, docstore.D("number", v.Number, "snapshots", snaps))
	}
	imports := make([]any, 0, len(d.imports))
	for _, st := range d.imports {
		imports = append(imports, docstore.D(
			"snapshot", st.Snapshot, "rows", st.Rows,
			"newRecords", st.NewRecords, "newObjects", st.NewObjects))
	}
	if err := meta.Insert(docstore.D(
		"_id", "dataset",
		"mode", int(d.Mode),
		"totalRows", d.totalRows,
		"versions", versions,
		"imports", imports,
	)); err != nil {
		panic(err)
	}
	return db
}

// clusterDoc renders one cluster as a nested document.
func clusterDoc(c *Cluster) docstore.Document {
	records := make([]any, 0, len(c.Records))
	hashes := make([]any, 0, len(c.Records))
	firstVersions := make([]any, 0, len(c.Records))
	snapshots := make([]any, 0, len(c.Records))
	for _, e := range c.Records {
		records = append(records, recordDoc(e.Rec))
		hashes = append(hashes, HashHex(e.Hash))
		firstVersions = append(firstVersions, e.FirstVersion)
		dates := make([]any, len(e.Snapshots))
		for i, s := range e.Snapshots {
			dates[i] = s
		}
		snapshots = append(snapshots, dates)
	}
	inserted := docstore.Document{}
	for _, date := range sortedKeys(c.Inserted) {
		inserted[docstore.FieldPathEscape(date)] = c.Inserted[date]
	}
	sims := docstore.Document{}
	for kind, vm := range c.SimMaps {
		kindDoc := docstore.Document{}
		for version, byI := range vm {
			vDoc := docstore.Document{}
			for i, row := range byI {
				rowDoc := docstore.Document{}
				for j, s := range row {
					rowDoc[strconv.Itoa(j)] = s
				}
				vDoc[strconv.Itoa(i)] = rowDoc
			}
			kindDoc["v"+strconv.Itoa(version)] = vDoc
		}
		sims[kind] = kindDoc
	}
	doc := docstore.D(
		"_id", c.NCID,
		"size", len(c.Records),
		"records", records,
		"meta", docstore.D(
			"hashes", hashes,
			"firstVersion", firstVersions,
			"snapshots", snapshots,
			"inserted", inserted,
			"sims", sims,
		),
	)
	// Cluster-level score summaries let users select score ranges with
	// plain store queries (the paper's customization workflow, §5): the
	// minimum plausibility and the mean person heterogeneity.
	if p, ok := c.ClusterScore(KindPlausibility, AggMin); ok {
		doc["plausibility"] = p
	}
	if h, ok := c.ClusterScore(KindHeteroPerson, AggMean); ok {
		doc["heterogeneity"] = HeteroFromSim(h)
	}
	return doc
}

// recordDoc splits one record into the four group sub-documents, storing
// only non-empty values (sparse representation).
func recordDoc(r voter.Record) docstore.Document {
	doc := docstore.Document{}
	for i, a := range voter.Attributes {
		v := r.Values[i]
		if v == "" {
			continue
		}
		group, ok := doc[a.Group.String()].(docstore.Document)
		if !ok {
			group = docstore.Document{}
			doc[a.Group.String()] = group
		}
		group[a.Name] = v
	}
	return doc
}

// FromDocDB reconstructs a Dataset from a document database produced by
// ToDocDB (directly or after a Save/Load round trip), parsing clusters
// sequentially. It is FromDocDBParallel at one worker.
func FromDocDB(db *docstore.DB) (*Dataset, error) {
	return FromDocDBParallel(db, 1)
}

// datasetFromMeta parses the dataset-level metadata document into a fresh
// Dataset, leaving the clusters to the caller.
func datasetFromMeta(db *docstore.DB) (*Dataset, error) {
	meta := db.Collection(MetaCollection).Get("dataset")
	if meta == nil {
		return nil, fmt.Errorf("core: document database misses the dataset metadata")
	}
	mode, _ := docstore.Get(meta, "mode")
	d := NewDataset(RemovalMode(asInt(mode)))
	if tr, ok := docstore.Get(meta, "totalRows"); ok {
		d.totalRows = asInt(tr)
	}
	if vs, ok := docstore.Get(meta, "versions"); ok {
		arr, _ := vs.([]any)
		for _, v := range arr {
			vd, _ := v.(docstore.Document)
			num, _ := docstore.Get(vd, "number")
			ver := Version{Number: asInt(num)}
			if snaps, ok := docstore.Get(vd, "snapshots"); ok {
				for _, s := range snaps.([]any) {
					ver.Snapshots = append(ver.Snapshots, fmt.Sprint(s))
				}
			}
			d.versions = append(d.versions, ver)
		}
	}
	if is, ok := docstore.Get(meta, "imports"); ok {
		arr, _ := is.([]any)
		for _, v := range arr {
			vd, _ := v.(docstore.Document)
			st := ImportStats{}
			if s, ok := docstore.Get(vd, "snapshot"); ok {
				st.Snapshot = fmt.Sprint(s)
			}
			st.Rows = intAt(vd, "rows")
			st.NewRecords = intAt(vd, "newRecords")
			st.NewObjects = intAt(vd, "newObjects")
			d.imports = append(d.imports, st)
		}
	}
	return d, nil
}

// clusterFromDoc parses one cluster document.
func clusterFromDoc(doc docstore.Document) (*Cluster, error) {
	ncid, _ := doc["_id"].(string)
	c := &Cluster{
		NCID:     ncid,
		Inserted: map[string]int{},
		SimMaps:  map[string]VersionSimMap{},
		hashes:   map[voter.Hash]int{},
	}
	recsAny, _ := doc["records"].([]any)
	hashesAny, _ := valueAt(doc, "meta.hashes").([]any)
	fvAny, _ := valueAt(doc, "meta.firstVersion").([]any)
	snapsAny, _ := valueAt(doc, "meta.snapshots").([]any)
	for i, rv := range recsAny {
		rd, _ := rv.(docstore.Document)
		e := RecordEntry{Rec: recordFromDoc(rd), FirstVersion: 1}
		if i < len(hashesAny) {
			if hs, ok := hashesAny[i].(string); ok {
				if h, ok := decodeHash(hs); ok {
					e.Hash = h
				}
			}
		}
		if i < len(fvAny) {
			e.FirstVersion = asInt(fvAny[i])
		}
		if i < len(snapsAny) {
			if dates, ok := snapsAny[i].([]any); ok {
				for _, dt := range dates {
					e.Snapshots = append(e.Snapshots, fmt.Sprint(dt))
				}
			}
		}
		if _, dup := c.hashes[e.Hash]; !dup {
			c.hashes[e.Hash] = len(c.Records)
		}
		c.Records = append(c.Records, e)
	}
	if ins, ok := valueAt(doc, "meta.inserted").(docstore.Document); ok {
		for k, v := range ins {
			c.Inserted[unescapeField(k)] = asInt(v)
		}
	}
	if sims, ok := valueAt(doc, "meta.sims").(docstore.Document); ok {
		for kind, kv := range sims {
			kindDoc, _ := kv.(docstore.Document)
			vm := VersionSimMap{}
			for vkey, vv := range kindDoc {
				version, err := strconv.Atoi(trimPrefix(vkey, "v"))
				if err != nil {
					continue
				}
				vDoc, _ := vv.(docstore.Document)
				byI := map[int]map[int]float64{}
				for ikey, iv := range vDoc {
					i, err := strconv.Atoi(ikey)
					if err != nil {
						continue
					}
					rowDoc, _ := iv.(docstore.Document)
					row := map[int]float64{}
					for jkey, jv := range rowDoc {
						j, err := strconv.Atoi(jkey)
						if err != nil {
							continue
						}
						row[j] = asFloat(jv)
					}
					byI[i] = row
				}
				vm[version] = byI
			}
			c.SimMaps[kind] = vm
		}
	}
	return c, nil
}

// recordFromDoc rebuilds the flat 90-value record from the grouped sparse
// document.
func recordFromDoc(doc docstore.Document) voter.Record {
	r := voter.NewRecord()
	for i, a := range voter.Attributes {
		if group, ok := doc[a.Group.String()].(docstore.Document); ok {
			if v, ok := group[a.Name].(string); ok {
				r.Values[i] = v
			}
		}
	}
	return r
}

// decodeHash parses the hex form written by HashHex.
func decodeHash(s string) (voter.Hash, bool) {
	var h voter.Hash
	if len(s) != len(h)*2 {
		return h, false
	}
	for i := 0; i < len(h); i++ {
		hi, ok1 := fromHexDigit(s[2*i])
		lo, ok2 := fromHexDigit(s[2*i+1])
		if !ok1 || !ok2 {
			return voter.Hash{}, false
		}
		h[i] = hi<<4 | lo
	}
	return h, true
}

func fromHexDigit(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// valueAt is Get without the ok flag.
func valueAt(doc docstore.Document, path string) any {
	v, _ := docstore.Get(doc, path)
	return v
}

func intAt(doc docstore.Document, path string) int {
	v, _ := docstore.Get(doc, path)
	return asInt(v)
}

func asInt(v any) int {
	switch n := v.(type) {
	case int:
		return n
	case int64:
		return int(n)
	case float64:
		return int(n)
	}
	return 0
}

func asFloat(v any) float64 {
	switch n := v.(type) {
	case float64:
		return n
	case int:
		return float64(n)
	}
	return 0
}

func trimPrefix(s, p string) string {
	if len(s) >= len(p) && s[:len(p)] == p {
		return s[len(p):]
	}
	return s
}

func unescapeField(k string) string {
	out := make([]rune, 0, len(k))
	for _, r := range k {
		if r == '．' {
			out = append(out, '.')
			continue
		}
		out = append(out, r)
	}
	return string(out)
}
