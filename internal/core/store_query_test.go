package core

import (
	"testing"

	"repro/internal/docstore"
	"repro/internal/simil"
	"repro/internal/voter"
)

// buildScoredStore builds a dataset with three clusters of distinct
// plausibility/heterogeneity levels and materializes it.
func buildScoredStore(t *testing.T) *docstore.DB {
	t.Helper()
	mk := func(ncid, first, last string) voter.Record {
		r := voter.NewRecord()
		r.SetName("ncid", ncid)
		r.SetName("first_name", first)
		r.SetName("last_name", last)
		r.SetName("sex_code", "F")
		return r
	}
	d := NewDataset(RemoveTrimmed)
	d.ImportSnapshot(voter.Snapshot{Date: "2008-01-01", Records: []voter.Record{
		// CLEAN: the two rows differ only in a trailing period (a
		// formatting difference that survives trimming-mode hashing but is
		// forgiven by the scorers).
		mk("CLEAN", "ANNA", "SMITH"), mk("CLEAN", "ANNA", "SMITH."),
		mk("TYPO", "BELLA", "JONES"), mk("TYPO", "BELLAX", "JONES"),
		mk("BAD", "CARLA", "WILSON"), mk("BAD", "ZOE", "NGUYEN"),
	}})
	// Plausibility via the name scorer; heterogeneity via a first-name
	// similarity stand-in (cheap and monotone for this test).
	d.UpdateScores(KindPlausibility, func(a, b voter.Record) float64 {
		return simil.GeneralizedJaccard(
			[]string{a.GetName("first_name"), a.GetName("last_name")},
			[]string{b.GetName("first_name"), b.GetName("last_name")},
			simil.ExtendedDamerauLevenshtein, 0.5)
	})
	d.UpdateScores(KindHeteroPerson, func(a, b voter.Record) float64 {
		return simil.DamerauLevenshteinSimilarity(a.GetName("first_name"), b.GetName("first_name"))
	})
	d.Publish()
	return d.ToDocDB()
}

func TestClusterDocsCarryScoreSummaries(t *testing.T) {
	db := buildScoredStore(t)
	col := db.Collection(ClustersCollection)

	clean := col.Get("CLEAN")
	if v, ok := clean["plausibility"]; !ok || v.(float64) < 0.99 {
		t.Errorf("clean plausibility = %v, %v", v, ok)
	}
	bad := col.Get("BAD")
	if v, ok := bad["plausibility"]; !ok || v.(float64) > 0.6 {
		t.Errorf("bad plausibility = %v, %v", v, ok)
	}
	if v, ok := clean["heterogeneity"]; !ok || v.(float64) > 0.1 {
		t.Errorf("clean heterogeneity = %v, %v", v, ok)
	}
}

func TestStoreQueryCustomization(t *testing.T) {
	// The paper's customization workflow directly on the store: select
	// suspect clusters via a range scan and extract a subset via the
	// aggregation pipeline.
	db := buildScoredStore(t)
	col := db.Collection(ClustersCollection)
	col.CreateOrderedIndex("plausibility")

	suspects := col.FindRange("plausibility", nil, 0.8)
	if len(suspects) != 1 || suspects[0]["_id"] != "BAD" {
		t.Fatalf("suspects = %v", ids(suspects))
	}

	sound := col.Pipeline(
		docstore.Match{Filter: docstore.Gt("plausibility", 0.8)},
		docstore.Sort{Path: "heterogeneity", Desc: true},
		docstore.Project{Paths: []string{"size", "heterogeneity"}},
	)
	if len(sound) != 2 {
		t.Fatalf("sound clusters = %v", ids(sound))
	}
	// The typo cluster is dirtier than the whitespace-only cluster.
	if sound[0]["_id"] != "TYPO" {
		t.Errorf("dirtiest sound cluster = %v", sound[0]["_id"])
	}

	// Per-record extraction via Unwind (the "one document per person,
	// records nested" layout pays off here).
	recs := col.Pipeline(
		docstore.Match{Filter: docstore.Eq("_id", "TYPO")},
		docstore.Unwind{Path: "records"},
		docstore.Project{Paths: []string{"records.person.first_name"}},
	)
	if len(recs) != 2 {
		t.Fatalf("unwound records = %d", len(recs))
	}
}

func ids(docs []docstore.Document) []any {
	var out []any
	for _, d := range docs {
		out = append(out, d["_id"])
	}
	return out
}

func TestScoreSummariesSurviveRoundTrip(t *testing.T) {
	db := buildScoredStore(t)
	ds, err := FromDocDB(db)
	if err != nil {
		t.Fatal(err)
	}
	// Round trip again: summaries are recomputed from the restored maps.
	db2 := ds.ToDocDB()
	a := db.Collection(ClustersCollection).Get("TYPO")["plausibility"].(float64)
	b := db2.Collection(ClustersCollection).Get("TYPO")["plausibility"].(float64)
	if a != b {
		t.Errorf("plausibility drifted across round trip: %v vs %v", a, b)
	}
}
