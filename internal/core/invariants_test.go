package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/voter"
)

// Property-based tests over randomly generated import sequences: the
// dataset's core invariants must hold for any input.

// randomSnapshot builds a snapshot with up to 12 rows over a tiny
// id/name space so collisions and duplicates occur often.
func randomSnapshot(rng *rand.Rand, date string) voter.Snapshot {
	n := 1 + rng.Intn(12)
	s := voter.Snapshot{Date: date}
	for i := 0; i < n; i++ {
		r := voter.NewRecord()
		r.SetName("ncid", fmt.Sprintf("ID%d", rng.Intn(6)))
		r.SetName("first_name", []string{"A", "B", "C"}[rng.Intn(3)])
		r.SetName("last_name", []string{"X", "Y"}[rng.Intn(2)])
		r.SetName("snapshot_dt", date)
		r.SetName("age", fmt.Sprint(20+rng.Intn(3)))
		s.Records = append(s.Records, r)
	}
	return s
}

func TestInvariantsUnderRandomImports(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := NewDataset(RemoveTrimmed)
		prevRecords := 0
		for v := 0; v < 4; v++ {
			date := fmt.Sprintf("20%02d-01-01", 10+v)
			st := d.ImportSnapshot(randomSnapshot(rng, date))
			d.Publish()
			// Monotone growth: records never shrink.
			if d.NumRecords() < prevRecords {
				return false
			}
			prevRecords = d.NumRecords()
			// Stats arithmetic: new objects <= new records <= rows.
			if st.NewObjects > st.NewRecords || st.NewRecords > st.Rows {
				return false
			}
		}
		// Total rows = kept + removed.
		if d.TotalRows() != d.NumRecords()+d.RemovedRecords() {
			return false
		}
		// Pair arithmetic: sum over clusters of C(n,2).
		pairs := 0
		d.Clusters(func(c *Cluster) bool {
			n := len(c.Records)
			pairs += n * (n - 1) / 2
			return true
		})
		if pairs != d.NumPairs() {
			return false
		}
		// Reconstructing the latest version is the identity.
		last := len(d.Versions())
		full := d.ReconstructVersion(last)
		if full.NumRecords() != d.NumRecords() || full.NumClusters() != d.NumClusters() {
			return false
		}
		// Versions are nested: v1 ⊆ v2 ⊆ ... ⊆ full.
		prev := 0
		for v := 1; v <= last; v++ {
			nv := d.ReconstructVersion(v).NumRecords()
			if nv < prev {
				return false
			}
			prev = nv
		}
		// The unbounded snapshot range is the identity as well.
		all := d.SnapshotRange("0000-01-01", "9999-12-31")
		return all.NumRecords() == d.NumRecords()
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestReimportIsIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSnapshot(rng, "2010-01-01")
		d := NewDataset(RemoveTrimmed)
		d.ImportSnapshot(s)
		before := d.NumRecords()
		// Re-importing the same snapshot adds no records.
		st := d.ImportSnapshot(s)
		return st.NewRecords == 0 && d.NumRecords() == before
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(12))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestDocRoundTripPreservesEverythingRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := NewDataset(RemoveTrimmed)
		for v := 0; v < 3; v++ {
			d.ImportSnapshot(randomSnapshot(rng, fmt.Sprintf("20%02d-01-01", 10+v)))
			d.Publish()
		}
		got, err := FromDocDB(d.ToDocDB())
		if err != nil {
			return false
		}
		if got.NumRecords() != d.NumRecords() || got.NumClusters() != d.NumClusters() ||
			got.NumPairs() != d.NumPairs() || got.TotalRows() != d.TotalRows() {
			return false
		}
		for _, id := range d.NCIDs() {
			a, b := d.Cluster(id), got.Cluster(id)
			if len(a.Records) != len(b.Records) {
				return false
			}
			for i := range a.Records {
				if a.Records[i].Hash != b.Records[i].Hash ||
					a.Records[i].FirstVersion != b.Records[i].FirstVersion ||
					len(a.Records[i].Snapshots) != len(b.Records[i].Snapshots) {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(13))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
