package core

import (
	"testing"

	"repro/internal/synth"
	"repro/internal/voter"
)

func TestImportSnapshotFileMatchesInMemory(t *testing.T) {
	dir := t.TempDir()
	cfg := synth.DefaultConfig(17, 150)
	cfg.Snapshots = synth.Calendar(2008, 3)
	paths, err := synth.WriteAll(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}

	streamed := NewDataset(RemoveTrimmed)
	var streamedStats []ImportStats
	for _, p := range paths {
		st, err := streamed.ImportSnapshotFile(p)
		if err != nil {
			t.Fatal(err)
		}
		streamedStats = append(streamedStats, st)
	}

	loaded := NewDataset(RemoveTrimmed)
	var loadedStats []ImportStats
	for _, p := range paths {
		snap, err := voter.ReadSnapshotFile(p)
		if err != nil {
			t.Fatal(err)
		}
		loadedStats = append(loadedStats, loaded.ImportSnapshot(snap))
	}

	if streamed.NumRecords() != loaded.NumRecords() ||
		streamed.NumClusters() != loaded.NumClusters() ||
		streamed.NumPairs() != loaded.NumPairs() {
		t.Fatalf("streamed %d/%d/%d vs loaded %d/%d/%d",
			streamed.NumRecords(), streamed.NumClusters(), streamed.NumPairs(),
			loaded.NumRecords(), loaded.NumClusters(), loaded.NumPairs())
	}
	for i := range streamedStats {
		if streamedStats[i] != loadedStats[i] {
			t.Errorf("stats %d differ: %+v vs %+v", i, streamedStats[i], loadedStats[i])
		}
	}
}

func TestImportLifecycleGuards(t *testing.T) {
	d := NewDataset(RemoveTrimmed)
	imp := d.BeginImport("2008-01-01")
	imp.Close()
	assertPanics(t, "double close", func() { imp.Close() })
	assertPanics(t, "add after close", func() { imp.Add(voter.NewRecord()) })
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	fn()
}

func TestImportSnapshotFileMissing(t *testing.T) {
	d := NewDataset(RemoveTrimmed)
	if _, err := d.ImportSnapshotFile("/does/not/exist.tsv"); err == nil {
		t.Fatal("missing file accepted")
	}
}
