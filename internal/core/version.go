package core

import "repro/internal/voter"

// Reconstruction of earlier dataset states (§5.1.2): because no record is
// ever removed, the dataset grows monotonically and any past version is the
// subset of records whose first-version field does not exceed it. Snapshot
// ranges are reconstructed from the per-record snapshot-date arrays.

// ReconstructVersion returns a read-only view containing exactly the records
// of the given published version: every record whose FirstVersion <= v.
// Clusters that had no record yet are absent. Version-similarity maps are
// filtered to versions <= v, so past scores reproduce exactly.
func (d *Dataset) ReconstructVersion(v int) *Dataset {
	return d.filter(func(e RecordEntry) bool { return e.FirstVersion <= v })
}

// SnapshotRange returns a read-only view limited to records that occurred in
// at least one snapshot with from <= date <= to (dates compare
// lexicographically in ISO form). This is the paper's "arbitrary subset of
// snapshots" use case.
func (d *Dataset) SnapshotRange(from, to string) *Dataset {
	return d.filter(func(e RecordEntry) bool {
		for _, s := range e.Snapshots {
			if s >= from && s <= to {
				return true
			}
		}
		return false
	})
}

// filter builds a view dataset with the records passing keep. Views share
// the underlying voter.Record values (which are never mutated) but own their
// cluster bookkeeping. Import statistics and pending state are not carried
// over; the view is for analysis, not further import.
func (d *Dataset) filter(keep func(RecordEntry) bool) *Dataset {
	out := NewDataset(d.Mode)
	for _, id := range d.order {
		c := d.clusters[id]
		var kept []RecordEntry
		keptIdx := make([]int, 0, len(c.Records))
		for i, e := range c.Records {
			if keep(e) {
				kept = append(kept, e)
				keptIdx = append(keptIdx, i)
			}
		}
		if len(kept) == 0 {
			continue
		}
		nc := &Cluster{
			NCID:     c.NCID,
			Records:  kept,
			Inserted: c.Inserted,
			SimMaps:  remapSims(c.SimMaps, keptIdx),
			hashes:   map[voter.Hash]int{},
		}
		for i, e := range nc.Records {
			if _, dup := nc.hashes[e.Hash]; !dup {
				nc.hashes[e.Hash] = i
			}
		}
		out.clusters[c.NCID] = nc
		out.order = append(out.order, c.NCID)
	}
	out.totalRows = out.NumRecords()
	// Carry published versions so nested reconstruction stays meaningful.
	out.versions = append(out.versions, d.versions...)
	return out
}

// remapSims rewrites a cluster's version-similarity maps onto the new
// record indices keptIdx (old index -> position in keptIdx). Pairs with a
// removed endpoint are dropped.
func remapSims(sims map[string]VersionSimMap, keptIdx []int) map[string]VersionSimMap {
	newIdx := map[int]int{}
	for ni, oi := range keptIdx {
		newIdx[oi] = ni
	}
	out := make(map[string]VersionSimMap, len(sims))
	for kind, vm := range sims {
		nvm := VersionSimMap{}
		for version, byI := range vm {
			for i, byJ := range byI {
				ni, ok := newIdx[i]
				if !ok {
					continue
				}
				for j, score := range byJ {
					nj, ok := newIdx[j]
					if !ok {
						continue
					}
					m := nvm[version]
					if m == nil {
						m = map[int]map[int]float64{}
						nvm[version] = m
					}
					if m[ni] == nil {
						m[ni] = map[int]float64{}
					}
					m[ni][nj] = score
				}
			}
		}
		out[kind] = nvm
	}
	return out
}
