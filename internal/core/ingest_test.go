package core

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/internal/synth"
	"repro/internal/voter"
)

// writeSnapshotFiles generates a small register and writes it as TSV files.
func writeSnapshotFiles(t *testing.T, seed int64, voters, years int) []string {
	t.Helper()
	cfg := synth.DefaultConfig(seed, voters)
	cfg.Snapshots = synth.Calendar(2008, years)
	paths, err := synth.WriteAll(cfg, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no snapshot files generated")
	}
	return paths
}

// importAllParallel imports every file with the given worker count.
func importAllParallel(t *testing.T, d *Dataset, paths []string, opts IngestOptions) []ImportStats {
	t.Helper()
	var stats []ImportStats
	for _, p := range paths {
		st, err := d.ImportSnapshotFileParallelOpts(p, opts)
		if err != nil {
			t.Fatalf("parallel import %s: %v", p, err)
		}
		stats = append(stats, st)
	}
	return stats
}

// TestParallelImportEquivalence is the contract of the pipeline: for any
// worker count the parallel import must produce a dataset byte-identical to
// the sequential one — clusters, order, hashes, import statistics, and the
// derived Table 1 / Table 2 rows. A deliberately small chunk size forces
// many blocks so reordering and shard routing are actually exercised.
func TestParallelImportEquivalence(t *testing.T) {
	paths := writeSnapshotFiles(t, 21, 180, 4)
	workerCounts := []int{1, 2, 7, runtime.GOMAXPROCS(0)}
	for _, mode := range []RemovalMode{RemoveNone, RemoveExact, RemoveTrimmed, RemovePersonData} {
		seq := NewDataset(mode)
		var seqStats []ImportStats
		for _, p := range paths {
			st, err := seq.ImportSnapshotFile(p)
			if err != nil {
				t.Fatalf("sequential import %s: %v", p, err)
			}
			seqStats = append(seqStats, st)
		}
		seq.Publish()

		for _, workers := range workerCounts {
			par := NewDataset(mode)
			parStats := importAllParallel(t, par, paths, IngestOptions{Workers: workers, ChunkBytes: 1 << 12})
			par.Publish()

			if !reflect.DeepEqual(seqStats, parStats) {
				t.Errorf("mode %v workers %d: ImportStats differ\nseq %+v\npar %+v", mode, workers, seqStats, parStats)
			}
			if !reflect.DeepEqual(seq.YearlyStats(), par.YearlyStats()) {
				t.Errorf("mode %v workers %d: Table 1 rows differ", mode, workers)
			}
			if !reflect.DeepEqual(seq.Stats(0), par.Stats(0)) {
				t.Errorf("mode %v workers %d: Table 2 row differs", mode, workers)
			}
			if !reflect.DeepEqual(seq, par) {
				t.Errorf("mode %v workers %d: datasets differ (clusters/order/metadata)", mode, workers)
			}
		}
	}
}

// TestParallelImportContinuesDataset covers the update process (Fig. 2): a
// second import round onto an already-published dataset must extend the
// pre-existing clusters identically on both paths.
func TestParallelImportContinuesDataset(t *testing.T) {
	paths := writeSnapshotFiles(t, 5, 120, 3)
	split := len(paths) / 2
	if split == 0 {
		split = 1
	}

	build := func(importRound func(d *Dataset, p string)) *Dataset {
		d := NewDataset(RemoveTrimmed)
		for _, p := range paths[:split] {
			importRound(d, p)
		}
		d.Publish()
		for _, p := range paths[split:] {
			importRound(d, p)
		}
		d.Publish()
		return d
	}

	seq := build(func(d *Dataset, p string) {
		if _, err := d.ImportSnapshotFile(p); err != nil {
			t.Fatal(err)
		}
	})
	par := build(func(d *Dataset, p string) {
		if _, err := d.ImportSnapshotFileParallelOpts(p, IngestOptions{Workers: 3, ChunkBytes: 1 << 12}); err != nil {
			t.Fatal(err)
		}
	})
	if !reflect.DeepEqual(seq, par) {
		t.Error("continued datasets differ between sequential and parallel import")
	}
}

// makeTSV renders a snapshot file with n simple records and returns its raw
// bytes (for surgery) plus the records.
func makeTSV(t *testing.T, n int) []byte {
	t.Helper()
	snap := voter.Snapshot{Date: "2010-03-01"}
	for i := 0; i < n; i++ {
		r := voter.NewRecord()
		r.SetName("ncid", fmt.Sprintf("AA%06d", i%7))
		r.SetName("snapshot_dt", "2010-03-01")
		r.SetName("first_name", fmt.Sprintf("NAME%d", i))
		snap.Records = append(snap.Records, r)
	}
	var buf bytes.Buffer
	if err := voter.WriteTSV(&buf, snap); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func writeTemp(t *testing.T, data []byte) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "VR_Snapshot_20100301.tsv")
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestParallelImportErrorParity: a malformed line must produce the same
// error and the same partial dataset state as the sequential reader —
// rows before the bad line applied, no import round recorded.
func TestParallelImportErrorParity(t *testing.T) {
	data := makeTSV(t, 40)
	lines := strings.Split(string(data), "\n")
	lines[25] = "only\tthree\tcolumns" // line 26 of the file
	bad := []byte(strings.Join(lines, "\n"))
	p := writeTemp(t, bad)

	seq := NewDataset(RemoveTrimmed)
	_, seqErr := seq.ImportSnapshotFile(p)
	par := NewDataset(RemoveTrimmed)
	_, parErr := par.ImportSnapshotFileParallelOpts(p, IngestOptions{Workers: 4, ChunkBytes: 256})

	if seqErr == nil || parErr == nil {
		t.Fatalf("expected errors, got seq=%v par=%v", seqErr, parErr)
	}
	if seqErr.Error() != parErr.Error() {
		t.Errorf("error mismatch:\nseq: %v\npar: %v", seqErr, parErr)
	}
	if !strings.Contains(parErr.Error(), "line 26") {
		t.Errorf("error does not name the failing line: %v", parErr)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("partial datasets after error differ")
	}
	if len(par.Imports()) != 0 {
		t.Errorf("failed import recorded a round: %+v", par.Imports())
	}
}

// TestParallelImportLongLine is the long-line regression test: a row far
// beyond bufio's 64 KiB default token limit must import on both paths, and
// a row beyond voter.MaxLineBytes must fail with bufio.ErrTooLong on both.
func TestParallelImportLongLine(t *testing.T) {
	long := makeTSVWithValue(t, strings.Repeat("X", 1<<20)) // 1 MiB value
	p := writeTemp(t, long)

	seq := NewDataset(RemoveTrimmed)
	if _, err := seq.ImportSnapshotFile(p); err != nil {
		t.Fatalf("sequential long-line import: %v", err)
	}
	par := NewDataset(RemoveTrimmed)
	if _, err := par.ImportSnapshotFileParallelOpts(p, IngestOptions{Workers: 3, ChunkBytes: 1 << 12}); err != nil {
		t.Fatalf("parallel long-line import: %v", err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("long-line datasets differ")
	}

	huge := makeTSVWithValue(t, strings.Repeat("X", voter.MaxLineBytes+1))
	hp := writeTemp(t, huge)
	if _, err := NewDataset(RemoveTrimmed).ImportSnapshotFile(hp); !errors.Is(err, bufio.ErrTooLong) {
		t.Errorf("sequential over-limit line: got %v, want bufio.ErrTooLong", err)
	}
	if _, err := NewDataset(RemoveTrimmed).ImportSnapshotFileParallelOpts(hp, IngestOptions{Workers: 3, ChunkBytes: 1 << 12}); !errors.Is(err, bufio.ErrTooLong) {
		t.Errorf("parallel over-limit line: got %v, want bufio.ErrTooLong", err)
	}
}

// makeTSVWithValue renders a 3-record snapshot whose middle record carries
// one oversized value.
func makeTSVWithValue(t *testing.T, v string) []byte {
	t.Helper()
	snap := voter.Snapshot{Date: "2010-03-01"}
	for i := 0; i < 3; i++ {
		r := voter.NewRecord()
		r.SetName("ncid", fmt.Sprintf("BB%06d", i))
		r.SetName("snapshot_dt", "2010-03-01")
		if i == 1 {
			r.SetName("street_name", v)
		}
		snap.Records = append(snap.Records, r)
	}
	var buf bytes.Buffer
	if err := voter.WriteTSV(&buf, snap); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelImportEmptyAndHeaderOnly pins the edge-file behavior to the
// sequential reader's.
func TestParallelImportEmptyAndHeaderOnly(t *testing.T) {
	empty := writeTemp(t, nil)
	if _, err := NewDataset(RemoveTrimmed).ImportSnapshotFileParallel(empty, 4); err == nil ||
		!strings.Contains(err.Error(), "missing header") {
		t.Errorf("empty file: got %v, want missing-header error", err)
	}

	headerOnly := makeTSV(t, 0)
	p := writeTemp(t, headerOnly)
	seq := NewDataset(RemoveTrimmed)
	seqSt, err := seq.ImportSnapshotFile(p)
	if err != nil {
		t.Fatal(err)
	}
	par := NewDataset(RemoveTrimmed)
	parSt, err := par.ImportSnapshotFileParallel(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqSt, parSt) || !reflect.DeepEqual(seq, par) {
		t.Errorf("header-only file: stats/datasets differ: %+v vs %+v", seqSt, parSt)
	}
}

// countingObserver records ingest counters for assertions.
type countingObserver struct{ counts map[string]int64 }

func (o *countingObserver) AddN(name string, n int64) {
	if o.counts == nil {
		o.counts = map[string]int64{}
	}
	o.counts[name] += n
}

func TestParallelImportObserverCounters(t *testing.T) {
	data := makeTSV(t, 50) // 7 distinct NCIDs, heavy duplication
	p := writeTemp(t, data)
	obs := &countingObserver{}
	d := NewDataset(RemoveTrimmed)
	st, err := d.ImportSnapshotFileParallelOpts(p, IngestOptions{Workers: 4, ChunkBytes: 512, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	if got := obs.counts["ingest_rows_decoded"]; got != int64(st.Rows) {
		t.Errorf("rows_decoded = %d, want %d", got, st.Rows)
	}
	if got := obs.counts["ingest_records_added"]; got != int64(st.NewRecords) {
		t.Errorf("records_added = %d, want %d", got, st.NewRecords)
	}
	if got := obs.counts["ingest_new_objects"]; got != int64(st.NewObjects) {
		t.Errorf("new_objects = %d, want %d", got, st.NewObjects)
	}
	wantRemoved := int64(st.Rows - st.NewRecords)
	if got := obs.counts["ingest_duplicates_removed"]; got != wantRemoved {
		t.Errorf("duplicates_removed = %d, want %d", got, wantRemoved)
	}
	for _, stage := range []string{"read", "decode", "route", "build"} {
		if _, ok := obs.counts["ingest_stall_"+stage+"_ms"]; !ok {
			t.Errorf("missing stall counter for stage %s", stage)
		}
	}
}
