package core

import "sort"

// YearStats aggregates the import statistics of all snapshots of one
// calendar year — one row of the paper's Table 1.
type YearStats struct {
	Year          int
	Snapshots     int
	TotalRecords  int // rows offered across the year's snapshots
	NewRecords    int
	NewObjects    int
	NewRecordRate float64 // NewRecords / TotalRecords
	NewObjectRate float64 // NewObjects / NewRecords
}

// YearlyStats groups the dataset's import history by snapshot year,
// ascending. Snapshots with unparsable dates land in year 0.
func (d *Dataset) YearlyStats() []YearStats {
	byYear := map[int]*YearStats{}
	for _, st := range d.imports {
		y := 0
		if len(st.Snapshot) >= 4 {
			y = atoi(st.Snapshot[:4])
		}
		ys, ok := byYear[y]
		if !ok {
			ys = &YearStats{Year: y}
			byYear[y] = ys
		}
		ys.Snapshots++
		ys.TotalRecords += st.Rows
		ys.NewRecords += st.NewRecords
		ys.NewObjects += st.NewObjects
	}
	years := make([]int, 0, len(byYear))
	for y := range byYear {
		years = append(years, y)
	}
	sort.Ints(years)
	out := make([]YearStats, 0, len(years))
	for _, y := range years {
		ys := byYear[y]
		if ys.TotalRecords > 0 {
			ys.NewRecordRate = float64(ys.NewRecords) / float64(ys.TotalRecords)
		}
		if ys.NewRecords > 0 {
			ys.NewObjectRate = float64(ys.NewObjects) / float64(ys.NewRecords)
		}
		out = append(out, *ys)
	}
	return out
}

// GenerationStats summarizes one removal mode's outcome — one row of the
// paper's Table 2. RemovedPairsPct is relative to the pair count of the
// no-removal run and must be supplied by the caller (who ran both).
type GenerationStats struct {
	Mode           RemovalMode
	Records        int
	DuplicatePairs int
	AvgClusterSize float64
	MaxClusterSize int
	RemovedRecords int
	RemovedRecPct  float64 // removed records / total rows
	RemovedPairs   int     // vs. the no-removal pair count
	RemovedPairPct float64
}

// Stats summarizes the dataset under its removal mode. nonePairs is the
// duplicate-pair count of the corresponding no-removal run (pass 0 if
// unknown; the pair-removal columns stay zero then).
func (d *Dataset) Stats(nonePairs int) GenerationStats {
	gs := GenerationStats{
		Mode:           d.Mode,
		Records:        d.NumRecords(),
		DuplicatePairs: d.NumPairs(),
		AvgClusterSize: d.AvgClusterSize(),
		MaxClusterSize: d.MaxClusterSize(),
		RemovedRecords: d.RemovedRecords(),
	}
	if d.totalRows > 0 {
		gs.RemovedRecPct = float64(gs.RemovedRecords) / float64(d.totalRows)
	}
	if nonePairs > 0 {
		gs.RemovedPairs = nonePairs - gs.DuplicatePairs
		gs.RemovedPairPct = float64(gs.RemovedPairs) / float64(nonePairs)
	}
	return gs
}

// atoi is a no-error integer parse for trusted year prefixes.
func atoi(s string) int {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + int(c-'0')
	}
	return n
}
