package core

import "testing"

// Edge cases of the reconstruction views (§5.1.2): empty datasets,
// out-of-range versions, degenerate snapshot ranges, and similarity-map
// remapping when the filter drops a record in the middle of a cluster.

func TestReconstructVersionEmptyDataset(t *testing.T) {
	d := NewDataset(RemoveTrimmed)
	for _, v := range []int{0, 1, 99} {
		view := d.ReconstructVersion(v)
		if view.NumClusters() != 0 || view.NumRecords() != 0 {
			t.Errorf("version %d of an empty dataset = %d clusters / %d records",
				v, view.NumClusters(), view.NumRecords())
		}
	}
	if r := d.SnapshotRange("2008-01-01", "2010-01-01"); r.NumRecords() != 0 {
		t.Errorf("snapshot range of an empty dataset = %d records", r.NumRecords())
	}
}

func TestReconstructVersionOutOfRange(t *testing.T) {
	d := NewDataset(RemoveTrimmed)
	d.ImportSnapshot(snap("2008-01-01", rec("A1", "JOHN", "SMITH", "")))
	d.Publish()
	d.ImportSnapshot(snap("2009-01-01", rec("B2", "MARY", "JONES", "")))
	d.Publish()

	// Version 0 predates every record: the view is empty but valid.
	if v0 := d.ReconstructVersion(0); v0.NumClusters() != 0 {
		t.Errorf("version 0 = %d clusters, want 0", v0.NumClusters())
	}
	// A version beyond the last published one is the full dataset, not an
	// error — monotone growth means "the future" holds at least everything.
	if v9 := d.ReconstructVersion(9); v9.NumRecords() != d.NumRecords() {
		t.Errorf("version 9 = %d records, want %d", v9.NumRecords(), d.NumRecords())
	}
	// Negative versions behave like 0.
	if vn := d.ReconstructVersion(-1); vn.NumClusters() != 0 {
		t.Errorf("version -1 = %d clusters, want 0", vn.NumClusters())
	}
}

func TestSnapshotRangeDegenerate(t *testing.T) {
	d := NewDataset(RemoveTrimmed)
	d.ImportSnapshot(snap("2008-01-01", rec("A1", "JOHN", "SMITH", "")))
	d.ImportSnapshot(snap("2009-01-01", rec("B2", "MARY", "JONES", "")))

	// from == to selects exactly the records that occurred on that date.
	one := d.SnapshotRange("2009-01-01", "2009-01-01")
	if one.NumRecords() != 1 || one.Cluster("B2") == nil {
		t.Errorf("from==to range = %d records", one.NumRecords())
	}
	// An inverted range matches nothing.
	if inv := d.SnapshotRange("2009-01-01", "2008-01-01"); inv.NumRecords() != 0 {
		t.Errorf("inverted range = %d records, want 0", inv.NumRecords())
	}
	// A range outside the history matches nothing.
	if out := d.SnapshotRange("1990-01-01", "1990-12-31"); out.NumRecords() != 0 {
		t.Errorf("out-of-history range = %d records, want 0", out.NumRecords())
	}
}

// TestFilterRemapsSimsAfterMiddleDrop pins remapSims: when a filter removes
// a record from the middle of a cluster, surviving pair scores must follow
// their records to the new indices and every pair with a dropped endpoint
// must vanish.
func TestFilterRemapsSimsAfterMiddleDrop(t *testing.T) {
	d := NewDataset(RemoveTrimmed)
	d.ImportSnapshot(snap("2008-01-01", rec("A1", "JOHN", "SMITH", "")))
	d.ImportSnapshot(snap("2009-01-01", rec("A1", "JON", "SMITH", "")))
	// 2010 re-registers the exact 2008 row (stamping its snapshot trail) and
	// adds a third variant, so the 2010 range keeps records 0 and 2 while
	// dropping record 1.
	d.ImportSnapshot(snap("2010-01-01", rec("A1", "JOHN", "SMITH", ""), rec("A1", "JOHNNY", "SMITH", "")))
	d.UpdateScores("test", nameSim)

	c := d.Cluster("A1")
	if len(c.Records) != 3 {
		t.Fatalf("cluster A1 has %d records, want 3", len(c.Records))
	}
	want20, ok := c.PairScore("test", 2, 0)
	if !ok {
		t.Fatal("pair (2,0) unscored in the source dataset")
	}

	view := d.SnapshotRange("2010-01-01", "2010-12-31")
	vc := view.Cluster("A1")
	if vc == nil || len(vc.Records) != 2 {
		t.Fatalf("view cluster = %+v, want 2 records", vc)
	}
	// Old records 0 and 2 survive as view records 0 and 1.
	if vc.Records[0].Rec.GetName("first_name") != "JOHN" ||
		vc.Records[1].Rec.GetName("first_name") != "JOHNNY" {
		t.Fatalf("view kept the wrong records: %s / %s",
			vc.Records[0].Rec.GetName("first_name"), vc.Records[1].Rec.GetName("first_name"))
	}
	got, ok := vc.PairScore("test", 1, 0)
	if !ok {
		t.Fatal("surviving pair (2,0) not remapped to (1,0)")
	}
	if got != want20 {
		t.Errorf("remapped pair score = %v, want %v", got, want20)
	}
	// Every pair with the dropped record as an endpoint is gone: the old
	// index 2 no longer exists, so nothing may score against it.
	for _, ij := range [][2]int{{2, 0}, {2, 1}, {1, 2}} {
		if _, ok := vc.PairScore("test", ij[0], ij[1]); ok {
			t.Errorf("view still scores pair %v", ij)
		}
	}
}
