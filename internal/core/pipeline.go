package core

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/voter"
)

// The parallel ingest pipeline (the scalability path for register-sized
// snapshot files, §5's "hundreds of gigabytes"):
//
//	chunker -> decode workers -> sequencer -> cluster shards -> merge
//
// The chunker slices the file into line-aligned blocks; a worker pool
// decodes blocks into rows and computes the (expensive) removal-mode MD5
// hash per row; a sequencer restores input order and routes each row to the
// shard owning its NCID; each shard applies rows to a disjoint slice of the
// cluster map through the same applyRow used by the sequential Import. The
// only coordination is the work queues, mirroring UpdateScoresParallel.
// Because every shard sees its rows in input-row order and the merge sorts
// new clusters by first-seen row index, the result is identical to a
// sequential import for any worker count.

// defaultChunkBytes is the line-aligned block size of the chunked reader.
const defaultChunkBytes = 256 << 10

// ingestBlock is one line-aligned slice of the input file.
type ingestBlock struct {
	seq      int // block sequence number, for reordering after decode
	firstRow int // zero-based data-row index of the block's first line
	data     []byte
}

// ingestRow is one decoded, hashed row with its routing metadata.
type ingestRow struct {
	rec   voter.Record
	ncid  string
	hash  voter.Hash
	row   int // zero-based data-row index in the file
	shard int // owning shard; -1 for rows without an NCID
}

// decodedBlock is one decode worker's output for one block. On err the rows
// slice holds exactly the rows preceding the failing line, so the partial
// dataset state on error matches the sequential reader's.
type decodedBlock struct {
	seq  int
	rows []ingestRow
	err  error
}

// shardBatch carries one block's rows of one shard, in input order.
type shardBatch struct {
	date string
	rows []ingestRow
}

// createdCluster is a cluster first seen during this import, tagged with the
// input row that introduced it so the merge can restore first-seen order.
type createdCluster struct {
	row  int
	ncid string
	c    *Cluster
}

// shardResult is what one cluster-builder shard hands to the merge step.
type shardResult struct {
	created    []createdCluster
	newRecords int
	newObjects int
	removed    int64  // duplicate rows dropped by the removal mode
	dl         *Delta // shard-local delta bookkeeping; nil on plain imports
}

// importReaderParallel runs the pipeline over one snapshot stream. A non-nil
// dl turns on delta bookkeeping: each shard classifies its rows against the
// cluster's pre-apply state into a shard-local Delta (NCIDs are disjoint
// across shards, so the per-shard sets merge without overlap) that is
// absorbed into dl after the shards drain.
func (d *Dataset) importReaderParallel(r io.Reader, opts IngestOptions, dl *Delta) (ImportStats, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return d.importReaderSequential(r, dl)
	}
	chunkBytes := opts.ChunkBytes
	if chunkBytes <= 0 {
		chunkBytes = defaultChunkBytes
	}
	hm := d.Mode.hashMode()
	version := d.currentVersion()
	nshards := workers

	br := bufio.NewReaderSize(r, 64<<10)
	if err := readIngestHeader(br); err != nil {
		return ImportStats{}, err
	}

	// Stall counters (ns blocked on queues, per stage) for the observer.
	var stallRead, stallDecode, stallRoute, stallBuild atomic.Int64

	blocks := make(chan ingestBlock, workers*2)
	decoded := make(chan decodedBlock, workers*2)
	done := make(chan struct{})
	var closeDone sync.Once
	cancel := func() { closeDone.Do(func() { close(done) }) }
	defer cancel()

	// Stage 1: chunker. readErr is written before blocks closes, so the
	// sequencer (which outlives the channel) reads it race-free.
	var readErr error
	go func() {
		defer close(blocks)
		readErr = readBlocks(br, chunkBytes, func(b ingestBlock) bool {
			t := time.Now()
			select {
			case blocks <- b:
				stallRead.Add(int64(time.Since(t)))
				return true
			case <-done:
				return false
			}
		})
	}()

	// Stage 2: decode + hash workers.
	var dwg sync.WaitGroup
	for w := 0; w < workers; w++ {
		dwg.Add(1)
		go func() {
			defer dwg.Done()
			for b := range blocks {
				db := decodeBlock(b, hm, nshards)
				t := time.Now()
				select {
				case decoded <- db:
					stallDecode.Add(int64(time.Since(t)))
				case <-done:
					return
				}
			}
		}()
	}
	go func() {
		dwg.Wait()
		close(decoded)
	}()

	// Stage 4 (started before 3 feeds it): cluster shards, each owning the
	// NCIDs that hash onto it.
	shardChs := make([]chan shardBatch, nshards)
	results := make([]shardResult, nshards)
	var swg sync.WaitGroup
	for s := 0; s < nshards; s++ {
		shardChs[s] = make(chan shardBatch, 4)
		var shardDl *Delta
		if dl != nil {
			shardDl = dl.sibling()
		}
		swg.Add(1)
		go func(si int, sdl *Delta) {
			defer swg.Done()
			results[si] = d.buildShard(shardChs[si], version, &stallBuild, sdl)
		}(s, shardDl)
	}

	// Stage 3: sequencer, on the calling goroutine. Restores block order,
	// counts rows, fixes the snapshot date from the first row and routes
	// rows to their shards; the first error stops routing (and the
	// upstream stages) but the channel is drained to completion.
	var (
		next     int
		pending  = map[int]decodedBlock{}
		rowsSeen int
		date     string
		dateSet  bool
		firstErr error
	)
	route := func(db decodedBlock) {
		if firstErr != nil {
			return
		}
		if !dateSet && len(db.rows) > 0 {
			date = db.rows[0].rec.SnapshotDate()
			dateSet = true
		}
		rowsSeen += len(db.rows)
		perShard := make([][]ingestRow, nshards)
		for _, ir := range db.rows {
			if ir.shard >= 0 {
				perShard[ir.shard] = append(perShard[ir.shard], ir)
			}
		}
		t := time.Now()
		for si, rows := range perShard {
			if len(rows) > 0 {
				shardChs[si] <- shardBatch{date: date, rows: rows}
			}
		}
		stallRoute.Add(int64(time.Since(t)))
		if db.err != nil {
			firstErr = db.err
			cancel()
		}
	}
	for db := range decoded {
		pending[db.seq] = db
		for {
			b, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			route(b)
		}
	}
	for _, ch := range shardChs {
		close(ch)
	}
	swg.Wait()

	if firstErr == nil && readErr != nil {
		firstErr = readErr
	}

	// Merge: apply shard results deterministically — new clusters in
	// first-seen input order, statistics as plain sums.
	var (
		created    []createdCluster
		newRecords int
		newObjects int
		removed    int64
	)
	for _, res := range results {
		created = append(created, res.created...)
		newRecords += res.newRecords
		newObjects += res.newObjects
		removed += res.removed
		if dl != nil && res.dl != nil {
			dl.absorb(res.dl)
		}
	}
	sort.Slice(created, func(i, j int) bool { return created[i].row < created[j].row })
	for _, cc := range created {
		d.clusters[cc.ncid] = cc.c
		d.order = append(d.order, cc.ncid)
	}
	d.totalRows += rowsSeen

	if o := opts.Observer; o != nil {
		o.AddN("ingest_rows_decoded", int64(rowsSeen))
		o.AddN("ingest_records_added", int64(newRecords))
		o.AddN("ingest_new_objects", int64(newObjects))
		o.AddN("ingest_duplicates_removed", removed)
		o.AddN("ingest_stall_read_ms", stallRead.Load()/int64(time.Millisecond))
		o.AddN("ingest_stall_decode_ms", stallDecode.Load()/int64(time.Millisecond))
		o.AddN("ingest_stall_route_ms", stallRoute.Load()/int64(time.Millisecond))
		o.AddN("ingest_stall_build_ms", stallBuild.Load()/int64(time.Millisecond))
	}

	if firstErr != nil {
		// Same contract as the sequential file import: rows before the
		// failure are applied, no import round is recorded.
		return ImportStats{}, firstErr
	}
	imp := d.BeginImport(date)
	imp.st.Rows = rowsSeen
	imp.st.NewRecords = newRecords
	imp.st.NewObjects = newObjects
	return imp.Close(), nil
}

// buildShard consumes one shard's batches and applies them to the clusters
// the shard owns. Pre-existing clusters are looked up in d.clusters (which
// no goroutine mutates during the import); new ones are recorded with their
// first-seen row for the ordered merge. A non-nil dl (shard-local) records
// the delta classification of every row before the shared applyRow mutation
// runs, exactly like the sequential addTracked.
func (d *Dataset) buildShard(ch <-chan shardBatch, version int, stall *atomic.Int64, dl *Delta) shardResult {
	res := shardResult{dl: dl}
	owned := map[string]*Cluster{}
	for {
		t := time.Now()
		b, ok := <-ch
		stall.Add(int64(time.Since(t)))
		if !ok {
			return res
		}
		for _, ir := range b.rows {
			c, have := owned[ir.ncid]
			if !have {
				if c, have = d.clusters[ir.ncid]; !have {
					c = newCluster(ir.ncid)
					res.created = append(res.created, createdCluster{row: ir.row, ncid: ir.ncid, c: c})
					res.newObjects++
				}
				owned[ir.ncid] = c
			}
			if dl != nil {
				touch, grow := rowChanges(c, ir.hash, b.date, d.Mode)
				dl.note(c, touch, grow)
			}
			if applyRow(c, ir.rec, ir.hash, d.Mode, version, b.date) {
				res.newRecords++
			} else if d.Mode != RemoveNone {
				res.removed++
			}
		}
	}
}

// readIngestHeader consumes and validates the header line, with the same
// errors and line-length limit as the sequential scanner.
func readIngestHeader(br *bufio.Reader) error {
	line, err := br.ReadString('\n')
	if err != nil && err != io.EOF {
		return err
	}
	if line == "" {
		return fmt.Errorf("voter: empty TSV input, missing header")
	}
	if len(line) > voter.MaxLineBytes {
		return bufio.ErrTooLong
	}
	line = strings.TrimSuffix(line, "\n")
	line = strings.TrimSuffix(line, "\r")
	return voter.ParseHeader(line)
}

// readBlocks slices the remaining input into line-aligned blocks of roughly
// chunkBytes, tracking each block's first data-row index. A line with no
// newline within voter.MaxLineBytes fails with bufio.ErrTooLong exactly
// like the sequential scanner. emit returning false stops the read (the
// pipeline was cancelled).
func readBlocks(r io.Reader, chunkBytes int, emit func(ingestBlock) bool) error {
	seq, row := 0, 0
	var rem []byte
	for {
		buf := make([]byte, len(rem)+chunkBytes)
		copy(buf, rem)
		n, err := io.ReadFull(r, buf[len(rem):])
		buf = buf[:len(rem)+n]
		eof := err == io.EOF || err == io.ErrUnexpectedEOF
		if err != nil && !eof {
			return err
		}
		var data []byte
		if eof {
			data, rem = buf, nil
		} else {
			i := bytes.LastIndexByte(buf, '\n')
			if i < 0 {
				// No full line yet: the current line spans blocks.
				if len(buf) >= voter.MaxLineBytes {
					return bufio.ErrTooLong
				}
				rem = buf
				continue
			}
			data = buf[:i+1]
			rem = append([]byte(nil), buf[i+1:]...)
		}
		if len(data) > 0 {
			nrows := bytes.Count(data, []byte{'\n'})
			if data[len(data)-1] != '\n' {
				nrows++ // unterminated final line at EOF
			}
			if !emit(ingestBlock{seq: seq, firstRow: row, data: data}) {
				return nil
			}
			seq++
			row += nrows
		}
		if eof {
			return nil
		}
	}
}

// decodeBlock turns one block into rows: line split, column validation,
// NCID extraction, removal-mode hash and shard assignment. Line numbers in
// errors are 1-based file lines (the header is line 1), identical to the
// sequential scanner's.
func decodeBlock(b ingestBlock, hm voter.HashMode, nshards int) decodedBlock {
	db := decodedBlock{seq: b.seq}
	data := b.data
	if n := len(data); n > 0 && data[n-1] == '\n' {
		data = data[:n-1]
	}
	for i, ln := range strings.Split(string(data), "\n") {
		ln = strings.TrimSuffix(ln, "\r")
		if len(ln) >= voter.MaxLineBytes {
			db.err = bufio.ErrTooLong
			return db
		}
		rec, err := voter.DecodeRow(ln, b.firstRow+i+2)
		if err != nil {
			db.err = err
			return db
		}
		ir := ingestRow{rec: rec, row: b.firstRow + i, shard: -1}
		if ir.ncid = rec.NCID(); ir.ncid != "" {
			ir.hash = voter.HashRecord(rec, hm)
			ir.shard = shardOf(ir.ncid, nshards)
		}
		db.rows = append(db.rows, ir)
	}
	return db
}

// shardOf maps an NCID onto one of n shards (inline FNV-1a, allocation
// free). Every row of one NCID lands on the same shard, which is what makes
// the shards' cluster slices disjoint.
func shardOf(ncid string, n int) int {
	h := uint32(2166136261)
	for i := 0; i < len(ncid); i++ {
		h ^= uint32(ncid[i])
		h *= 16777619
	}
	return int(h % uint32(n))
}
