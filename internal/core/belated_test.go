package core

import (
	"testing"
)

// The register publishes some snapshots belatedly (§5.1: the 2010-11-02
// snapshot appeared in May 2019). Reproducibility must therefore key on the
// import version, never the snapshot date: these tests pin that behavior.

func TestBelatedSnapshotImport(t *testing.T) {
	d := NewDataset(RemoveTrimmed)
	d.ImportSnapshot(snap("2019-01-01", rec("A1", "JOHN", "SMITH", "")))
	d.Publish() // version 1 contains only the 2019 snapshot

	// The belated 2010 snapshot arrives later and lands in version 2.
	d.ImportSnapshot(snap("2010-11-02", rec("A1", "JOHNNY", "SMITH", ""), rec("B2", "OLD", "VOTER", "")))
	d.Publish()

	// Version 1 reconstruction excludes the belated records even though
	// their snapshot date is older.
	v1 := d.ReconstructVersion(1)
	if v1.NumRecords() != 1 {
		t.Fatalf("v1 records = %d, want 1", v1.NumRecords())
	}
	if v1.Cluster("B2") != nil {
		t.Error("belated object leaked into version 1")
	}
	// The snapshot-date range, in contrast, finds the belated rows — the
	// two reconstruction axes are independent.
	old := d.SnapshotRange("2010-01-01", "2010-12-31")
	if old.NumRecords() != 2 {
		t.Errorf("2010 range = %d records, want 2", old.NumRecords())
	}
}

func TestBelatedDuplicateRowJoinsExistingRecord(t *testing.T) {
	d := NewDataset(RemoveTrimmed)
	d.ImportSnapshot(snap("2019-01-01", rec("A1", "JOHN", "SMITH", "")))
	d.Publish()
	// The belated snapshot contains the identical row: it is deduplicated
	// but its snapshot date still registers on the existing record.
	st := d.ImportSnapshot(snap("2010-11-02", rec("A1", "JOHN", "SMITH", "")))
	d.Publish()
	if st.NewRecords != 0 {
		t.Errorf("belated identical row counted as new: %+v", st)
	}
	e := d.Cluster("A1").Records[0]
	if len(e.Snapshots) != 2 || e.Snapshots[1] != "2010-11-02" {
		t.Errorf("snapshot array = %v", e.Snapshots)
	}
	// It remains a version-1 record.
	if e.FirstVersion != 1 {
		t.Errorf("first version = %d", e.FirstVersion)
	}
}
