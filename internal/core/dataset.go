// Package core implements the paper's contribution: the pipeline that turns
// historical voter-register snapshots into a labeled duplicate-detection
// test dataset. It covers the four (near-)exact duplicate-removal modes of
// §4, cluster-grouped storage with per-record reproducibility metadata
// (§5.1), incremental version-similarity maps for plausibility and
// heterogeneity scores (§5.2), versioned monotone updates (Fig. 2), and the
// reconstruction of earlier versions and snapshot ranges.
//
// Snapshots import either sequentially (ImportSnapshotFile) or through the
// sharded parallel ingest pipeline (ImportSnapshotFileParallel) — the
// register-scale answer to the paper's 507 M-row corpus; both paths produce
// identical datasets (see pipeline.go).
package core

import (
	"encoding/hex"
	"fmt"
	"os"
	"sort"

	"repro/internal/voter"
)

// RemovalMode selects the duplicate-removal strategy of the import (§4's
// four generation runs).
type RemovalMode int

const (
	// RemoveNone imports every row.
	RemoveNone RemovalMode = iota
	// RemoveExact drops rows whose un-trimmed relevant attributes already
	// exist in the cluster.
	RemoveExact
	// RemoveTrimmed drops rows that are exact after trimming.
	RemoveTrimmed
	// RemovePersonData drops rows whose trimmed person attributes already
	// exist in the cluster.
	RemovePersonData
)

// String names the mode like the paper's Table 2 rows.
func (m RemovalMode) String() string {
	switch m {
	case RemoveNone:
		return "no"
	case RemoveExact:
		return "exact"
	case RemoveTrimmed:
		return "trimming"
	case RemovePersonData:
		return "person data"
	}
	return fmt.Sprintf("RemovalMode(%d)", int(m))
}

// hashMode maps the removal mode to the record hash it deduplicates with;
// RemoveNone still hashes (with the exact hash) for new-record statistics,
// but never drops a row.
func (m RemovalMode) hashMode() voter.HashMode {
	switch m {
	case RemovePersonData:
		return voter.HashPersonData
	case RemoveTrimmed:
		return voter.HashTrimmed
	default:
		return voter.HashExact
	}
}

// RecordEntry is one stored record plus its reproducibility metadata: the
// hash that identified it, the first dataset version containing it, and the
// dates of every snapshot in which the row occurred (§5.1.2).
type RecordEntry struct {
	Rec          voter.Record
	Hash         voter.Hash
	FirstVersion int
	Snapshots    []string
}

// Cluster groups all records of one real-world object (one NCID) together
// with its per-snapshot insert counts and version-similarity maps.
type Cluster struct {
	NCID    string
	Records []RecordEntry
	// Inserted counts how many new records each snapshot contributed
	// (§5.1.2: reconstruction of statistics).
	Inserted map[string]int
	// SimMaps holds one version-similarity map per registered score kind:
	// kind -> version -> newer record index -> older record index -> score.
	// Scores are computed once when the newer record's version is
	// published and never recomputed (§5.2).
	SimMaps map[string]VersionSimMap

	hashes map[voter.Hash]int // hash -> record index
}

// VersionSimMap is a version-similarity map: version -> record index ->
// earlier record index -> similarity.
type VersionSimMap map[int]map[int]map[int]float64

// Pairs returns the number of duplicate pairs in the cluster: n*(n-1)/2.
func (c *Cluster) Pairs() int {
	n := len(c.Records)
	return n * (n - 1) / 2
}

// ImportStats summarizes one snapshot import (the raw material of the
// paper's Table 1).
type ImportStats struct {
	Snapshot   string // snapshot date
	Rows       int    // rows in the snapshot file
	NewRecords int    // rows whose hash was not yet in their cluster
	NewObjects int    // rows introducing a previously unseen NCID
}

// Version describes one published dataset version (Fig. 2's output).
type Version struct {
	Number    int
	Snapshots []string // snapshots imported since the previous version
}

// Dataset is the growing test dataset: duplicate clusters keyed by NCID plus
// version metadata. A Dataset is built by ImportSnapshot + Publish rounds;
// it is not safe for concurrent mutation.
type Dataset struct {
	Mode     RemovalMode
	clusters map[string]*Cluster
	order    []string // NCIDs in first-seen order
	versions []Version
	imports  []ImportStats
	pending  []string // snapshots imported since the last Publish
	// totalRows counts every row ever offered to the importer, including
	// removed duplicates.
	totalRows int
}

// NewDataset returns an empty dataset using the given removal mode.
func NewDataset(mode RemovalMode) *Dataset {
	return &Dataset{Mode: mode, clusters: map[string]*Cluster{}}
}

// currentVersion is the number the next Publish will assign.
func (d *Dataset) currentVersion() int { return len(d.versions) + 1 }

// ImportSnapshot feeds one snapshot through the removal mode and returns its
// import statistics. Rows with an empty NCID are counted but never stored.
func (d *Dataset) ImportSnapshot(s voter.Snapshot) ImportStats {
	imp := d.BeginImport(s.Date)
	for _, r := range s.Records {
		imp.Add(r)
	}
	return imp.Close()
}

// Import is an in-progress streaming snapshot import: rows are offered one
// at a time (directly off a TSV reader, §5's "hundreds of gigabytes"
// requirement) and the statistics close the round.
type Import struct {
	d       *Dataset
	st      ImportStats
	hm      voter.HashMode
	version int
	closed  bool
}

// BeginImport opens a streaming import for one snapshot date.
func (d *Dataset) BeginImport(date string) *Import {
	return &Import{
		d:       d,
		st:      ImportStats{Snapshot: date},
		hm:      d.Mode.hashMode(),
		version: d.currentVersion(),
	}
}

// Add offers one row to the import.
func (imp *Import) Add(r voter.Record) { imp.addTracked(r, nil) }

// addTracked is Add with optional delta bookkeeping: when dl is non-nil the
// row is classified against the cluster's pre-apply state (see delta.go)
// before the one shared mutation path runs. The classification never changes
// what applyRow does, which is what keeps ApplySnapshotDelta bit-identical
// to a plain import of the same rows.
func (imp *Import) addTracked(r voter.Record, dl *Delta) {
	if imp.closed {
		panic("core: Add on a closed Import")
	}
	d := imp.d
	imp.st.Rows++
	d.totalRows++
	ncid := r.NCID()
	if ncid == "" {
		return
	}
	c, ok := d.clusters[ncid]
	if !ok {
		c = newCluster(ncid)
		d.clusters[ncid] = c
		d.order = append(d.order, ncid)
		imp.st.NewObjects++
	}
	h := voter.HashRecord(r, imp.hm)
	if dl != nil {
		touch, grow := rowChanges(c, h, imp.st.Snapshot, d.Mode)
		dl.note(c, touch, grow)
	}
	if applyRow(c, r, h, d.Mode, imp.version, imp.st.Snapshot) {
		imp.st.NewRecords++
	}
}

// newCluster returns an empty cluster ready to accept rows.
func newCluster(ncid string) *Cluster {
	return &Cluster{
		NCID:     ncid,
		Inserted: map[string]int{},
		SimMaps:  map[string]VersionSimMap{},
		hashes:   map[voter.Hash]int{},
	}
}

// applyRow applies one pre-hashed row to its cluster under the removal-mode
// semantics and reports whether a new record (a previously unseen hash) was
// stored. It is the single mutation path shared by the sequential Import and
// the sharded parallel pipeline, which is what makes the two provably
// equivalent: a shard owns every row of its NCIDs and feeds them here in
// input order, exactly like a sequential import restricted to those NCIDs.
func applyRow(c *Cluster, r voter.Record, h voter.Hash, mode RemovalMode, version int, date string) bool {
	if idx, seen := c.hashes[h]; seen {
		// Known record: remember that this snapshot contained it, too
		// (enables snapshot-range reconstruction), but count nothing new.
		entry := &c.Records[idx]
		if n := len(entry.Snapshots); n == 0 || entry.Snapshots[n-1] != date {
			entry.Snapshots = append(entry.Snapshots, date)
		}
		if mode != RemoveNone {
			return false
		}
		// RemoveNone imports everything; fall through without
		// registering the duplicate hash again.
		c.Records = append(c.Records, RecordEntry{
			Rec: r, Hash: h, FirstVersion: version, Snapshots: []string{date},
		})
		c.Inserted[date]++
		return false
	}
	c.hashes[h] = len(c.Records)
	c.Records = append(c.Records, RecordEntry{
		Rec: r, Hash: h, FirstVersion: version, Snapshots: []string{date},
	})
	c.Inserted[date]++
	return true
}

// Close finishes the import round, records its statistics and returns them.
func (imp *Import) Close() ImportStats {
	if imp.closed {
		panic("core: Import closed twice")
	}
	imp.closed = true
	imp.d.imports = append(imp.d.imports, imp.st)
	imp.d.pending = append(imp.d.pending, imp.st.Snapshot)
	return imp.st
}

// ImportSnapshotFile streams one TSV snapshot file through the removal mode
// without materializing it (the scalability path for register-sized files).
// ImportSnapshotFileParallel is the multi-core equivalent.
func (d *Dataset) ImportSnapshotFile(path string) (ImportStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return ImportStats{}, err
	}
	defer f.Close()
	return d.importReaderSequential(f, nil)
}

// Publish closes the pending import round as a new version (Fig. 2, step 3)
// and returns its number. Publishing with nothing imported still creates a
// version (the "new statistics are required" trigger).
func (d *Dataset) Publish() int {
	v := Version{Number: d.currentVersion(), Snapshots: d.pending}
	d.versions = append(d.versions, v)
	d.pending = nil
	return v.Number
}

// Versions returns the published versions in order.
func (d *Dataset) Versions() []Version { return d.versions }

// SnapshotLineage flattens the published versions' snapshot dates into one
// import-ordered list — the dataset's update history (Fig. 2), recorded into
// the provenance metadata so a verified corpus also names the snapshots
// that built it.
func (d *Dataset) SnapshotLineage() []string {
	var dates []string
	for _, v := range d.versions {
		dates = append(dates, v.Snapshots...)
	}
	return dates
}

// Imports returns the per-snapshot import statistics in import order.
func (d *Dataset) Imports() []ImportStats { return d.imports }

// NumClusters returns the number of objects (duplicate clusters).
func (d *Dataset) NumClusters() int { return len(d.clusters) }

// NumRecords returns the number of stored records.
func (d *Dataset) NumRecords() int {
	n := 0
	for _, c := range d.clusters {
		n += len(c.Records)
	}
	return n
}

// NumPairs returns the number of duplicate pairs across all clusters.
func (d *Dataset) NumPairs() int {
	n := 0
	for _, c := range d.clusters {
		n += c.Pairs()
	}
	return n
}

// TotalRows returns the number of rows offered to the importer, including
// removed near-exact duplicates.
func (d *Dataset) TotalRows() int { return d.totalRows }

// RemovedRecords returns how many rows the removal mode dropped.
func (d *Dataset) RemovedRecords() int { return d.totalRows - d.NumRecords() }

// Cluster returns the cluster of the given NCID, or nil.
func (d *Dataset) Cluster(ncid string) *Cluster { return d.clusters[ncid] }

// Clusters visits every cluster in first-seen order.
func (d *Dataset) Clusters(fn func(*Cluster) bool) {
	for _, id := range d.order {
		if !fn(d.clusters[id]) {
			return
		}
	}
}

// NCIDs returns the cluster ids in first-seen order.
func (d *Dataset) NCIDs() []string {
	out := make([]string, len(d.order))
	copy(out, d.order)
	return out
}

// MaxClusterSize returns the largest number of records per object.
func (d *Dataset) MaxClusterSize() int {
	m := 0
	for _, c := range d.clusters {
		if len(c.Records) > m {
			m = len(c.Records)
		}
	}
	return m
}

// AvgClusterSize returns the mean number of records per object, 0 for an
// empty dataset.
func (d *Dataset) AvgClusterSize() float64 {
	if len(d.clusters) == 0 {
		return 0
	}
	return float64(d.NumRecords()) / float64(len(d.clusters))
}

// ClusterSizeHistogram returns how many clusters exist per cluster size
// (Fig. 1 of the paper).
func (d *Dataset) ClusterSizeHistogram() map[int]int {
	h := map[int]int{}
	for _, c := range d.clusters {
		h[len(c.Records)]++
	}
	return h
}

// HashHex renders a record hash for storage.
func HashHex(h voter.Hash) string { return hex.EncodeToString(h[:]) }

// sortedKeys returns the keys of a string-keyed map in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
