package core

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"

	"repro/internal/voter"
)

// Incremental snapshot application (delta ingest): the paper's update
// process (Fig. 2) is monotone — snapshots only ever append record versions
// to existing NCID clusters — yet a naive "continue the store" run still
// pays O(dataset) three times per import: the scoring pass walks every
// cluster's similarity map, the persistence pass rewrites every docstore
// segment, and nothing tells downstream layers which clusters actually
// changed. ApplySnapshotDelta fixes that: it runs the incoming rows through
// the exact same mutation path as a plain import (so the resulting dataset
// is bit-identical to ImportSnapshotFile / ImportSnapshotFileParallel of the
// same file) while classifying every row against its cluster's pre-apply
// state. The classification yields two NCID sets:
//
//   - touched: the cluster's stored bytes changed (a record was appended or
//     a snapshot date was stamped onto an existing record) — the unit of
//     docstore segment invalidation (docstore.SaveOpts.Dirty);
//   - dirty: the cluster gained records, i.e. new duplicate pairs exist —
//     the unit of score recomputation (plaus.UpdateDelta, hetero.UpdateDelta
//     via UpdateScoresParallelFactoryOn).
//
// Clusters outside the touched set are provably byte-stable and keep their
// memoized scores, so an import where k% of the records changed costs O(k)
// in rescoring and segment rewriting instead of O(n).

// DeltaOptions tunes ApplySnapshotDelta. The zero value of a field selects
// the default documented on it.
type DeltaOptions struct {
	// Workers sizes the ingest pipeline exactly like IngestOptions.Workers:
	// <= 0 selects GOMAXPROCS, 1 runs the sequential import. The resulting
	// dataset and delta sets are identical at any count.
	Workers int
	// ChunkBytes is the parallel reader's block size; <= 0 selects the
	// ingest default.
	ChunkBytes int
	// Observer, when non-nil, receives the delta_* counters (and, through
	// the parallel pipeline, the ingest_* counters).
	Observer IngestObserver
	// Index, when non-nil, is the caller's fingerprint index of the base
	// dataset. ApplySnapshotDelta validates every first-touched cluster
	// against it (a mismatch reports ErrStaleIndex: the delta was computed
	// against a base state the caller did not have) and refreshes the
	// touched entries afterwards, keeping the index current across applies.
	Index *FingerprintIndex
}

// DeltaStats extends the import statistics with the delta classification
// counts.
type DeltaStats struct {
	ImportStats
	// UnchangedRows counts rows that changed nothing: their hash was already
	// in the cluster and the cluster had already seen this snapshot date.
	UnchangedRows int
	// TouchedClusters counts clusters whose stored bytes changed.
	TouchedClusters int
	// DirtyClusters counts clusters that gained records (rescoring scope);
	// always a subset of TouchedClusters.
	DirtyClusters int
}

// Delta is the result of one ApplySnapshotDelta: the statistics plus the
// touched/dirty NCID sets that drive incremental rescoring and dirty-segment
// persistence.
type Delta struct {
	Stats DeltaStats

	touched map[string]bool
	dirty   map[string]bool
	idx     *FingerprintIndex // validation source; nil disables
	stale   []string          // first-touched NCIDs whose index entry mismatched
}

// newDelta returns an empty delta validating against ix (which may be nil).
func newDelta(ix *FingerprintIndex) *Delta {
	return &Delta{touched: map[string]bool{}, dirty: map[string]bool{}, idx: ix}
}

// sibling returns an empty delta sharing the validation index — the
// shard-local collector of the parallel pipeline. The index is only read.
func (dl *Delta) sibling() *Delta { return newDelta(dl.idx) }

// note records one row's classification. It runs before the row is applied,
// so a first touch can validate the cluster's pre-apply state against the
// fingerprint index.
func (dl *Delta) note(c *Cluster, touch, grow bool) {
	if !touch {
		dl.Stats.UnchangedRows++
		return
	}
	if !dl.touched[c.NCID] {
		if dl.idx != nil && !dl.idx.matches(c.NCID, c) {
			dl.stale = append(dl.stale, c.NCID)
		}
		dl.touched[c.NCID] = true
	}
	if grow {
		dl.dirty[c.NCID] = true
	}
}

// absorb merges a shard-local delta into the root one. Shards own disjoint
// NCID sets, so the set unions cannot conflict.
func (dl *Delta) absorb(other *Delta) {
	for id := range other.touched {
		dl.touched[id] = true
	}
	for id := range other.dirty {
		dl.dirty[id] = true
	}
	dl.Stats.UnchangedRows += other.Stats.UnchangedRows
	dl.stale = append(dl.stale, other.stale...)
}

// Merge folds another delta (a later snapshot of the same run) into this
// one, accumulating statistics and set unions — the multi-file shape of
// `ncimport -delta`. The zero Delta is a valid accumulator.
func (dl *Delta) Merge(other *Delta) {
	if dl.touched == nil {
		dl.touched = map[string]bool{}
	}
	if dl.dirty == nil {
		dl.dirty = map[string]bool{}
	}
	for id := range other.touched {
		dl.touched[id] = true
	}
	for id := range other.dirty {
		dl.dirty[id] = true
	}
	dl.Stats.Rows += other.Stats.Rows
	dl.Stats.NewRecords += other.Stats.NewRecords
	dl.Stats.NewObjects += other.Stats.NewObjects
	dl.Stats.UnchangedRows += other.Stats.UnchangedRows
	dl.Stats.TouchedClusters = len(dl.touched)
	dl.Stats.DirtyClusters = len(dl.dirty)
}

// Touched returns the NCIDs whose stored bytes changed, sorted.
func (dl *Delta) Touched() []string { return sortedSet(dl.touched) }

// Dirty returns the NCIDs needing score recomputation, sorted. The result
// is never nil: an empty delta rescopes rescoring to nothing, it does not
// fall back to every cluster.
func (dl *Delta) Dirty() []string { return sortedSet(dl.dirty) }

// DirtyIDs returns the per-collection dirty sets for a dirty-segment save of
// the dataset's ToDocDB materialization: the clusters collection rewrites
// only segments holding touched clusters; the meta collection carries no
// entry, so it is fully rewritten (its single document changes on every
// import round). The returned map shares the delta's touched set — treat it
// as read-only.
func (dl *Delta) DirtyIDs() map[string]map[string]bool {
	return map[string]map[string]bool{ClustersCollection: dl.touched}
}

func sortedSet(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// rowChanges classifies one pre-hashed row against its cluster's current
// state: touch reports that applying it will change the cluster's stored
// bytes at all, grow that it will append a record (and therefore new
// duplicate pairs). It mirrors applyRow's branches exactly and must stay in
// lockstep with them.
func rowChanges(c *Cluster, h voter.Hash, date string, mode RemovalMode) (touch, grow bool) {
	idx, seen := c.hashes[h]
	if !seen {
		return true, true
	}
	if mode == RemoveNone {
		// RemoveNone stores every row again, duplicates included.
		return true, true
	}
	e := &c.Records[idx]
	if n := len(e.Snapshots); n == 0 || e.Snapshots[n-1] != date {
		return true, false // snapshot-date stamp only
	}
	return false, false
}

// ApplySnapshotDelta streams one TSV snapshot file into the dataset through
// the standard import machinery — the resulting dataset, import statistics
// and version bookkeeping are bit-identical to ImportSnapshotFileParallel of
// the same file at any worker count — and returns the delta: which clusters
// changed and which of them need rescoring. The intended input is an
// append-mostly delta file (the new and changed rows since the last
// snapshot), but any snapshot file works; rows that change nothing are
// counted and otherwise free.
//
// On a stale-index error the rows have still been applied (the dataset
// equals a plain import) and the returned delta sets are still correct —
// they come from live classification, not the index — but the caller's
// assumption about the base state was wrong and should be investigated.
func (d *Dataset) ApplySnapshotDelta(path string, opts DeltaOptions) (*Delta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return d.applyDeltaReader(f, opts)
}

// applyDeltaReader is ApplySnapshotDelta over an open stream.
func (d *Dataset) applyDeltaReader(r io.Reader, opts DeltaOptions) (*Delta, error) {
	dl := newDelta(opts.Index)
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var st ImportStats
	var err error
	if workers == 1 {
		st, err = d.importReaderSequential(r, dl)
	} else {
		st, err = d.importReaderParallel(r, IngestOptions{
			Workers:    workers,
			ChunkBytes: opts.ChunkBytes,
			Observer:   opts.Observer,
		}, dl)
	}
	if err != nil {
		return nil, err
	}
	dl.Stats.ImportStats = st
	dl.Stats.TouchedClusters = len(dl.touched)
	dl.Stats.DirtyClusters = len(dl.dirty)
	if o := opts.Observer; o != nil {
		o.AddN("delta_applies", 1)
		o.AddN("delta_rows_decoded", int64(st.Rows))
		o.AddN("delta_rows_unchanged", int64(dl.Stats.UnchangedRows))
		o.AddN("delta_records_added", int64(st.NewRecords))
		o.AddN("delta_new_objects", int64(st.NewObjects))
		o.AddN("delta_clusters_touched", int64(dl.Stats.TouchedClusters))
		o.AddN("delta_clusters_dirty", int64(dl.Stats.DirtyClusters))
	}
	if opts.Index != nil {
		opts.Index.Refresh(d, dl.Touched())
		if len(dl.stale) > 0 {
			sort.Strings(dl.stale)
			return dl, fmt.Errorf("core: %w: %d clusters diverged from the fingerprint index (first: %s)",
				ErrStaleIndex, len(dl.stale), dl.stale[0])
		}
	}
	return dl, nil
}
