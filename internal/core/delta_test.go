package core

import (
	"errors"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/voter"
)

// writeDeltaFile writes rows as one TSV snapshot file and returns its path.
func writeDeltaFile(t *testing.T, dir string, s voter.Snapshot) string {
	t.Helper()
	path, err := voter.WriteSnapshotFile(dir, s)
	if err != nil {
		t.Fatal(err)
	}
	return path
}

// TestApplySnapshotDeltaEquivalence is the core contract: applying a file as
// a delta leaves the dataset bit-identical to importing the same file
// plainly, for every removal mode and worker count.
func TestApplySnapshotDeltaEquivalence(t *testing.T) {
	paths := writeSnapshotFiles(t, 33, 150, 3)
	workerCounts := []int{1, 2, 7, runtime.GOMAXPROCS(0)}
	for _, mode := range []RemovalMode{RemoveNone, RemoveExact, RemoveTrimmed, RemovePersonData} {
		plain := NewDataset(mode)
		var plainStats []ImportStats
		for _, p := range paths {
			st, err := plain.ImportSnapshotFile(p)
			if err != nil {
				t.Fatal(err)
			}
			plainStats = append(plainStats, st)
			plain.Publish()
		}

		for _, workers := range workerCounts {
			dd := NewDataset(mode)
			for i, p := range paths {
				dl, err := dd.ApplySnapshotDelta(p, DeltaOptions{Workers: workers, ChunkBytes: 1 << 12})
				if err != nil {
					t.Fatalf("mode %v workers %d: %v", mode, workers, err)
				}
				if dl.Stats.ImportStats != plainStats[i] {
					t.Errorf("mode %v workers %d file %d: stats %+v, want %+v",
						mode, workers, i, dl.Stats.ImportStats, plainStats[i])
				}
				dd.Publish()
			}
			if !reflect.DeepEqual(plain, dd) {
				t.Errorf("mode %v workers %d: delta-applied dataset differs from plain import", mode, workers)
			}
		}
	}
}

// TestDeltaClassification pins the four row classes against a hand-built
// base: a new NCID, a new record in an existing cluster, a pure snapshot
// stamp on a known record, and a fully unchanged row.
func TestDeltaClassification(t *testing.T) {
	dir := t.TempDir()
	d := NewDataset(RemoveTrimmed)
	d.ImportSnapshot(snap("2008-01-01",
		rec("A1", "JOHN", "SMITH", ""),
		rec("B2", "MARY", "JONES", ""),
		rec("C3", "PAUL", "MILLER", ""),
	))
	d.Publish()

	path := writeDeltaFile(t, dir, snap("2008-03-01",
		rec("D4", "NEW", "VOTER", ""),  // new NCID: touch + dirty
		rec("A1", "JON", "SMITH", ""),  // new record, known cluster: touch + dirty
		rec("B2", "MARY", "JONES", ""), // known record, new date: touch only
		rec("B2", "MARY", "JONES", ""), // same row again: unchanged (date already stamped)
	))
	dl, err := d.ApplySnapshotDelta(path, DeltaOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := dl.Touched(), []string{"A1", "B2", "D4"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Touched = %v, want %v", got, want)
	}
	if got, want := dl.Dirty(), []string{"A1", "D4"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Dirty = %v, want %v", got, want)
	}
	st := dl.Stats
	if st.Rows != 4 || st.NewRecords != 2 || st.NewObjects != 1 || st.UnchangedRows != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.TouchedClusters != 3 || st.DirtyClusters != 2 {
		t.Errorf("cluster counts = %+v", st)
	}
	ids := dl.DirtyIDs()
	if !reflect.DeepEqual(sortedSet(ids[ClustersCollection]), dl.Touched()) {
		t.Errorf("DirtyIDs clusters = %v", ids)
	}
	if _, ok := ids[MetaCollection]; ok {
		t.Errorf("DirtyIDs must not scope the meta collection")
	}

	// C3 was untouched; RemoveNone duplicates always touch.
	dn := NewDataset(RemoveNone)
	dn.ImportSnapshot(snap("2008-01-01", rec("A1", "JOHN", "SMITH", "")))
	p2 := writeDeltaFile(t, dir, snap("2008-01-01", rec("A1", "JOHN", "SMITH", "")))
	dl2, err := dn.ApplySnapshotDelta(p2, DeltaOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := dl2.Dirty(), []string{"A1"}; !reflect.DeepEqual(got, want) {
		t.Errorf("RemoveNone duplicate Dirty = %v, want %v", got, want)
	}
}

// TestDeltaSubsetScoringMatchesFull proves the rescoring scope: scoring only
// Dirty() after a delta yields similarity maps identical to a full pass over
// the grown dataset, because old pairs are never rescored.
func TestDeltaSubsetScoringMatchesFull(t *testing.T) {
	paths := writeSnapshotFiles(t, 44, 120, 3)
	scorer := func(a, b voter.Record) float64 {
		if a.Values[voter.IdxLastName] == b.Values[voter.IdxLastName] {
			return 1
		}
		return 0.25
	}
	const kind = "test_kind"

	full := NewDataset(RemoveTrimmed)
	inc := NewDataset(RemoveTrimmed)
	for _, p := range paths {
		if _, err := full.ImportSnapshotFile(p); err != nil {
			t.Fatal(err)
		}
		full.Publish()
		full.UpdateScores(kind, scorer)

		dl, err := inc.ApplySnapshotDelta(p, DeltaOptions{Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		inc.Publish()
		inc.UpdateScoresParallelFactoryOn(kind, func() PairScorer { return scorer }, 3, dl.Dirty())
	}
	if !reflect.DeepEqual(full, inc) {
		t.Fatal("dirty-subset scoring diverged from full scoring")
	}
}

// TestUpdateScoresOnEmptyAndNil pins the scope convention: nil scores
// everything, an empty non-nil slice scores nothing.
func TestUpdateScoresOnEmptyAndNil(t *testing.T) {
	mk := func() *Dataset {
		d := NewDataset(RemoveTrimmed)
		d.ImportSnapshot(snap("2008-01-01",
			rec("A1", "JOHN", "SMITH", ""), rec("A1", "JON", "SMITH", "")))
		d.Publish()
		return d
	}
	scorer := func(a, b voter.Record) float64 { return 0.5 }

	d := mk()
	d.UpdateScoresOn("k", scorer, []string{})
	if _, ok := d.Cluster("A1").PairScore("k", 1, 0); ok {
		t.Fatal("empty scope scored a pair")
	}
	d.UpdateScoresOn("k", scorer, nil)
	if _, ok := d.Cluster("A1").PairScore("k", 1, 0); !ok {
		t.Fatal("nil scope did not score")
	}
	d2 := mk()
	d2.UpdateScoresParallelFactoryOn("k", func() PairScorer { return scorer }, 4, []string{"missing", "A1"})
	if _, ok := d2.Cluster("A1").PairScore("k", 1, 0); !ok {
		t.Fatal("scoped parallel scoring missed A1")
	}
}

// TestFingerprintIndexTracksDeltas drives one index across delta rounds:
// Verify holds after each refresh, Diff against a pre-apply copy equals the
// touched set, and a deliberately stale index reports ErrStaleIndex while
// the dataset and delta sets stay correct.
func TestFingerprintIndexTracksDeltas(t *testing.T) {
	paths := writeSnapshotFiles(t, 55, 100, 3)
	d := NewDataset(RemoveTrimmed)
	ix := BuildFingerprintIndex(d)
	for _, p := range paths {
		before := BuildFingerprintIndex(d)
		dl, err := d.ApplySnapshotDelta(p, DeltaOptions{Workers: 2, Index: ix})
		if err != nil {
			t.Fatalf("%s: %v", filepath.Base(p), err)
		}
		d.Publish()
		if err := ix.Verify(d); err != nil {
			t.Fatalf("index stale after refresh: %v", err)
		}
		after := BuildFingerprintIndex(d)
		if got := before.Diff(after); !reflect.DeepEqual(got, dl.Touched()) {
			t.Errorf("%s: fingerprint diff %d ids, touched %d ids",
				filepath.Base(p), len(got), len(dl.Touched()))
		}
	}

	// A stale index: drop one touched cluster's entry behind a fresh build.
	stale := BuildFingerprintIndex(d)
	plain := NewDataset(RemoveTrimmed)
	for _, p := range paths {
		if _, err := plain.ImportSnapshotFile(p); err != nil {
			t.Fatal(err)
		}
		plain.Publish()
	}
	dir := t.TempDir()
	ncid := d.NCIDs()[0]
	c := d.Cluster(ncid)
	path := writeDeltaFile(t, dir, snap("2099-01-01",
		rec(ncid, "FORCED", "CHANGE", "")))
	stale.fps[ncid] = ClusterFP{Records: c.Records[0].FirstVersion + 99}
	dl, err := d.ApplySnapshotDelta(path, DeltaOptions{Workers: 1, Index: stale})
	if !errors.Is(err, ErrStaleIndex) {
		t.Fatalf("err = %v, want ErrStaleIndex", err)
	}
	if dl == nil || !reflect.DeepEqual(dl.Touched(), []string{ncid}) {
		t.Fatalf("delta sets not returned on stale index: %+v", dl)
	}
	if _, err2 := plain.ImportSnapshotFile(path); err2 != nil {
		t.Fatal(err2)
	}
	d.Publish()
	plain.Publish()
	if !reflect.DeepEqual(plain, d) {
		t.Error("stale-index apply diverged from plain import")
	}
	// Refresh ran despite the error, so the index is current again.
	if err := stale.Verify(d); err != nil {
		t.Errorf("index not refreshed after stale apply: %v", err)
	}
}

// TestFingerprintIndexVerifyCountsMismatch covers the size-mismatch branch.
func TestFingerprintIndexVerifyCountsMismatch(t *testing.T) {
	d := NewDataset(RemoveTrimmed)
	d.ImportSnapshot(snap("2008-01-01", rec("A1", "JOHN", "SMITH", "")))
	ix := BuildFingerprintIndex(d)
	d.ImportSnapshot(snap("2008-03-01", rec("B2", "MARY", "JONES", "")))
	if err := ix.Verify(d); !errors.Is(err, ErrStaleIndex) {
		t.Fatalf("Verify = %v, want ErrStaleIndex", err)
	}
	if fp, ok := ix.Lookup("A1"); !ok || fp.Records != 1 || fp.LastSeen != "2008-01-01" {
		t.Errorf("Lookup A1 = %+v %v", fp, ok)
	}
	ix.Refresh(d, []string{"B2", "ghost"})
	if err := ix.Verify(d); err != nil {
		t.Fatalf("Verify after refresh: %v", err)
	}
	if ix.Len() != 2 {
		t.Errorf("Len = %d, want 2", ix.Len())
	}
}

// TestDeltaMerge folds two deltas and checks set union plus summed stats.
func TestDeltaMerge(t *testing.T) {
	dir := t.TempDir()
	d := NewDataset(RemoveTrimmed)
	d.ImportSnapshot(snap("2008-01-01", rec("A1", "JOHN", "SMITH", "")))
	d.Publish()
	p1 := writeDeltaFile(t, dir, snap("2008-03-01",
		rec("A1", "JON", "SMITH", ""), rec("B2", "MARY", "JONES", "")))
	p2 := writeDeltaFile(t, dir, snap("2008-05-01",
		rec("B2", "MARY", "JONES", ""), rec("C3", "PAUL", "MILLER", "")))
	dl1, err := d.ApplySnapshotDelta(p1, DeltaOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	dl2, err := d.ApplySnapshotDelta(p2, DeltaOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	dl1.Merge(dl2)
	if got, want := dl1.Touched(), []string{"A1", "B2", "C3"}; !reflect.DeepEqual(got, want) {
		t.Errorf("merged Touched = %v, want %v", got, want)
	}
	if got, want := dl1.Dirty(), []string{"A1", "B2", "C3"}; !reflect.DeepEqual(got, want) {
		t.Errorf("merged Dirty = %v, want %v", got, want)
	}
	st := dl1.Stats
	if st.Rows != 4 || st.NewObjects != 2 || st.TouchedClusters != 3 || st.DirtyClusters != 3 {
		t.Errorf("merged stats = %+v", st)
	}
}

// TestDeltaEmptyDirtyIsNotNil pins the Dirty() convention an empty delta
// must keep: non-nil empty, so UpdateScoresOn scores nothing rather than
// falling back to everything.
func TestDeltaEmptyDirtyIsNotNil(t *testing.T) {
	dir := t.TempDir()
	d := NewDataset(RemoveTrimmed)
	d.ImportSnapshot(snap("2008-01-01", rec("A1", "JOHN", "SMITH", "")))
	d.Publish()
	// Same row, same date: nothing changes.
	p := writeDeltaFile(t, dir, snap("2008-01-01", rec("A1", "JOHN", "SMITH", "")))
	dl, err := d.ApplySnapshotDelta(p, DeltaOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if dl.Dirty() == nil || len(dl.Dirty()) != 0 {
		t.Fatalf("Dirty = %#v, want non-nil empty", dl.Dirty())
	}
	if dl.Stats.UnchangedRows != 1 || dl.Stats.TouchedClusters != 0 {
		t.Errorf("stats = %+v", dl.Stats)
	}
}
