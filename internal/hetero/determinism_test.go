package hetero

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/simil"
	"repro/internal/voter"
)

// varietyDataset builds a dataset with many distinct attribute values so the
// entropy maps behind DatasetWeights carry enough keys for map iteration
// order to matter (the fixed ROADMAP nondeterminism). Some clusters have two
// versions so pair scores exist.
func varietyDataset(t testing.TB) *core.Dataset {
	t.Helper()
	firsts := []string{"JOHN", "JANE", "ALEJANDRO", "MEI", "PRIYA", "OLU", "SVEN", "AKIRA", "FATIMA", "LARS", "NOOR", "IVAN"}
	lasts := []string{"SMITH", "NGUYEN", "GARCIA", "KOWALSKI", "OKAFOR", "LINDQVIST", "TANAKA", "HASSAN", "PETROV", "MULLER", "DUBOIS", "ROSSI"}
	cities := []string{"DURHAM", "RALEIGH", "CARY", "APEX", "WILSON", "BOONE", "SHELBY", "MONROE", "CLAYTON", "GARNER", "LENOIR", "SYLVA"}
	var recs []voter.Record
	for i := range firsts {
		r := voter.NewRecord()
		r.SetName("ncid", fmt.Sprintf("C%02d", i))
		r.SetName("first_name", firsts[i])
		r.SetName("last_name", lasts[i])
		r.SetName("res_city_desc", cities[i])
		recs = append(recs, r)
		if i%2 == 0 { // a second, slightly differing version
			v := voter.NewRecord()
			v.SetName("ncid", fmt.Sprintf("C%02d", i))
			v.SetName("first_name", firsts[i]+"E")
			v.SetName("last_name", lasts[(i+1)%len(lasts)])
			v.SetName("res_city_desc", cities[i])
			recs = append(recs, v)
		}
	}
	d := core.NewDataset(core.RemoveTrimmed)
	d.ImportSnapshot(voter.Snapshot{Date: "2008-01-01", Records: recs})
	return d
}

// TestParallelScoreHeteroDeterministic is the ROADMAP open item's regression
// test: scoring a fixture twice through freshly built maps must produce the
// exact same bytes. Before the sorted-order entropy accumulation in
// simil.Entropy, the weights (and with them every pair score) could differ
// in the last ulp between runs because map iteration order changed the
// floating-point summation order.
func TestParallelScoreHeteroDeterministic(t *testing.T) {
	collect := func() []uint64 {
		d := varietyDataset(t) // fresh dataset => fresh entropy maps
		UpdateParallel(d, 3)
		var bits []uint64
		for _, w := range DatasetWeights(d, AllColumns()) {
			bits = append(bits, math.Float64bits(w))
		}
		// PairScores streams clusters and indices in deterministic order.
		for _, kind := range []string{core.KindHeteroAll, core.KindHeteroPerson} {
			d.PairScores(kind, func(_ *core.Cluster, _, _ int, sim float64) bool {
				bits = append(bits, math.Float64bits(sim))
				return true
			})
		}
		return bits
	}
	want := collect()
	if len(want) == 0 {
		t.Fatal("fixture produced no scores")
	}
	for run := 0; run < 10; run++ {
		got := collect()
		if len(got) != len(want) {
			t.Fatalf("run %d: %d values, want %d", run, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("run %d: value %d = %016x, want %016x — scoring is nondeterministic",
					run, i, got[i], want[i])
			}
		}
	}
}

// TestParallelScoreHeteroScratchMatchesPlain pins the bit-identity of the
// allocation-free scoring path against the plain one, both per value and per
// record pair.
func TestParallelScoreHeteroScratchMatchesPlain(t *testing.T) {
	vals := []string{"", "SMITH", "smith", "SMYTH", "ANH THI", "THI ANH", "CHRISTOPHER LEE", "KRISTOFFER L", "O'BRIEN", "NGUYEN"}
	var sc simil.Scratch
	for _, a := range vals {
		for _, b := range vals {
			want := ValueSim(a, b)
			got := ValueSimInto(a, b, &sc)
			if math.Float64bits(want) != math.Float64bits(got) {
				t.Fatalf("ValueSimInto(%q, %q) = %v, want %v", a, b, got, want)
			}
		}
	}

	d := varietyDataset(t)
	s := NewScorer(AllColumns(), DatasetWeights(d, AllColumns()))
	ss := &scorerScratch{}
	d.Clusters(func(c *core.Cluster) bool {
		for i := 1; i < len(c.Records); i++ {
			a, b := c.Records[i].Rec, c.Records[i-1].Rec
			want := s.PairSim(a, b)
			got := s.pairSimInto(a, b, ss)
			if math.Float64bits(want) != math.Float64bits(got) {
				t.Fatalf("pairSimInto = %v, want %v (cluster %s)", got, want, c.NCID)
			}
		}
		return true
	})
}

// TestParallelScoreHeteroWorkerLadder checks UpdateParallel against the
// sequential Update bit for bit across worker counts, now that every worker
// scores through private scratch buffers.
func TestParallelScoreHeteroWorkerLadder(t *testing.T) {
	ref := varietyDataset(t)
	Update(ref)
	for _, workers := range []int{2, 3, 7} {
		d := varietyDataset(t)
		UpdateParallel(d, workers)
		assertSameScores(t, ref, d, workers)
	}
}

func assertSameScores(t *testing.T, ref, got *core.Dataset, workers int) {
	t.Helper()
	for _, kind := range []string{core.KindHeteroAll, core.KindHeteroPerson} {
		var want []uint64
		ref.PairScores(kind, func(_ *core.Cluster, _, _ int, sim float64) bool {
			want = append(want, math.Float64bits(sim))
			return true
		})
		k := 0
		got.PairScores(kind, func(_ *core.Cluster, i, j int, sim float64) bool {
			if k >= len(want) || math.Float64bits(sim) != want[k] {
				t.Fatalf("workers=%d kind=%s: score %d/%d,%d diverges", workers, kind, k, i, j)
			}
			k++
			return true
		})
		if k != len(want) {
			t.Fatalf("workers=%d kind=%s: %d scores, want %d", workers, kind, k, len(want))
		}
	}
}

func BenchmarkPersonPairSimScratch(b *testing.B) {
	d := buildDataset(&testing.T{})
	s := NewScorer(PersonColumns(), DatasetWeights(d, PersonColumns()))
	ss := &scorerScratch{}
	a := d.Cluster("DIRTY").Records[0].Rec
	c := d.Cluster("DIRTY").Records[1].Rec
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.pairSimInto(a, c, ss)
	}
}
