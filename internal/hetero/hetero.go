// Package hetero implements the paper's heterogeneity scoring (§6.3): a
// dirtiness measure for duplicate pairs that — unlike plausibility — counts
// every difference, while weighting insignificant differences (case,
// token confusions) lower than real replacements. Every two values are
// compared four times (with and without lowercasing × sequential
// Damerau-Levenshtein and hybrid Monge-Elkan) and averaged; attributes are
// weighted by their entropy computed from one record per cluster so that no
// external domain knowledge biases cross-dataset comparisons.
package hetero

import (
	"strings"

	"repro/internal/core"
	"repro/internal/simil"
	"repro/internal/voter"
)

// ValueSim returns the similarity of two attribute values: the mean of the
// four comparisons described above. Two empty values are identical (1).
func ValueSim(a, b string) float64 {
	la, lb := strings.ToLower(a), strings.ToLower(b)
	s := simil.DamerauLevenshteinSimilarity(a, b)
	s += simil.DamerauLevenshteinSimilarity(la, lb)
	s += simil.MongeElkanDL(a, b)
	s += simil.MongeElkanDL(la, lb)
	return s / 4
}

// ValueSimInto is ValueSim through caller-owned scratch buffers: the same
// four comparisons in the same order, with the DP rows and token slices
// reused across calls. Results match ValueSim bit for bit.
func ValueSimInto(a, b string, sc *simil.Scratch) float64 {
	la, lb := strings.ToLower(a), strings.ToLower(b)
	s := simil.DamerauLevenshteinSimilarityInto(a, b, sc)
	s += simil.DamerauLevenshteinSimilarityInto(la, lb, sc)
	s += simil.MongeElkanDLInto(a, b, sc)
	s += simil.MongeElkanDLInto(la, lb, sc)
	return s / 4
}

// PairSim returns the weighted mean value similarity of two aligned value
// slices. len(a), len(b) and len(weights) must agree.
func PairSim(a, b []string, weights []float64) float64 {
	if len(a) != len(b) || len(a) != len(weights) {
		panic("hetero: PairSim length mismatch")
	}
	scores := make([]float64, len(a))
	for i := range a {
		scores[i] = ValueSim(a[i], b[i])
	}
	return simil.WeightedAverage(scores, weights)
}

// Heterogeneity is the inverse pair similarity: records are the more
// heterogeneous the less similar they are.
func Heterogeneity(a, b []string, weights []float64) float64 {
	return 1 - PairSim(a, b, weights)
}

// EntropyWeightsFromRows derives normalized attribute weights from rows of
// aligned values: each column's Shannon entropy divided by the total.
func EntropyWeightsFromRows(rows [][]string) []float64 {
	if len(rows) == 0 {
		return nil
	}
	cols := make([][]string, len(rows[0]))
	for c := range cols {
		col := make([]string, len(rows))
		for r := range rows {
			col[r] = rows[r][c]
		}
		cols[c] = col
	}
	return simil.EntropyWeights(cols)
}

// Scorer scores record pairs over a fixed column subset with fixed weights.
// It implements the similarity orientation of core's version-similarity
// maps; the heterogeneity is 1 minus the stored score.
type Scorer struct {
	cols    []int
	weights []float64
}

// NewScorer returns a scorer over the given schema columns and weights
// (typically from DatasetWeights).
func NewScorer(cols []int, weights []float64) *Scorer {
	if len(cols) != len(weights) {
		panic("hetero: NewScorer length mismatch")
	}
	return &Scorer{cols: cols, weights: weights}
}

// extract pulls the scored column values out of a record, trimmed: leading
// and trailing whitespace is a distribution artifact, not dirtiness.
func (s *Scorer) extract(r voter.Record) []string {
	vals := make([]string, len(s.cols))
	for i, c := range s.cols {
		vals[i] = strings.TrimSpace(r.Values[c])
	}
	return vals
}

// PairSim scores one record pair.
func (s *Scorer) PairSim(a, b voter.Record) float64 {
	return PairSim(s.extract(a), s.extract(b), s.weights)
}

// CorePairScorer adapts the scorer to core's registration interface.
func (s *Scorer) CorePairScorer() core.PairScorer {
	return func(a, b voter.Record) float64 { return s.PairSim(a, b) }
}

// scorerScratch is the per-worker mutable state of the allocation-free
// scoring path: kernel scratch plus the extracted value and score slices.
type scorerScratch struct {
	sc     simil.Scratch
	va, vb []string
	scores []float64
}

// extractInto is extract with a reused destination slice.
func (s *Scorer) extractInto(r voter.Record, dst []string) []string {
	dst = dst[:0]
	for _, c := range s.cols {
		dst = append(dst, strings.TrimSpace(r.Values[c]))
	}
	return dst
}

// pairSimInto scores one record pair through the scratch. The accumulation
// order matches PairSim exactly (per-column ValueSim, then WeightedAverage),
// so the result is bit-identical.
func (s *Scorer) pairSimInto(a, b voter.Record, ss *scorerScratch) float64 {
	ss.va = s.extractInto(a, ss.va)
	ss.vb = s.extractInto(b, ss.vb)
	if cap(ss.scores) < len(s.cols) {
		ss.scores = make([]float64, len(s.cols))
	}
	ss.scores = ss.scores[:len(s.cols)]
	for i := range ss.va {
		ss.scores[i] = ValueSimInto(ss.va[i], ss.vb[i], &ss.sc)
	}
	return simil.WeightedAverage(ss.scores, s.weights)
}

// CorePairScorerFactory returns a factory producing one allocation-free
// scorer per worker for core.UpdateScoresParallelFactory: each returned
// PairScorer owns private scratch buffers, so it must not be shared between
// goroutines, and scores equal PairSim's bit for bit.
func (s *Scorer) CorePairScorerFactory() func() core.PairScorer {
	return func() core.PairScorer {
		ss := &scorerScratch{}
		return func(a, b voter.Record) float64 { return s.pairSimInto(a, b, ss) }
	}
}

// DatasetWeights computes the entropy weights of the given schema columns
// from one record per cluster of the dataset — duplicates would distort the
// uniqueness estimate (an otherwise unique id occurs multiple times), so
// only cluster representatives contribute (§6.3).
func DatasetWeights(d *core.Dataset, cols []int) []float64 {
	var rows [][]string
	d.Clusters(func(c *core.Cluster) bool {
		r := c.Records[0].Rec
		vals := make([]string, len(cols))
		for i, ci := range cols {
			vals[i] = strings.TrimSpace(r.Values[ci])
		}
		rows = append(rows, vals)
		return true
	})
	return EntropyWeightsFromRows(rows)
}

// AllColumns returns the schema columns scored by the all-attribute
// heterogeneity (everything except the gold-standard NCID, which must never
// influence a dirtiness measure).
func AllColumns() []int {
	var cols []int
	for i := range voter.Attributes {
		if i == voter.IdxNCID {
			continue
		}
		cols = append(cols, i)
	}
	return cols
}

// PersonColumns returns the person-group columns (the paper's second
// heterogeneity map, used by the NC1-NC3 customization).
func PersonColumns() []int {
	return voter.GroupIndices(voter.GroupPerson)
}

// Update computes (incrementally) both heterogeneity version-similarity maps
// of the dataset, deriving fresh entropy weights from the current cluster
// representatives.
func Update(d *core.Dataset) {
	UpdateParallel(d, 1)
}

// UpdateParallel is Update over a worker pool (workers <= 0 selects
// GOMAXPROCS); the result is identical. Each worker gets its own
// allocation-free scorer with private scratch buffers, so the hot path
// performs no per-pair allocations.
func UpdateParallel(d *core.Dataset, workers int) {
	all := NewScorer(AllColumns(), DatasetWeights(d, AllColumns()))
	person := NewScorer(PersonColumns(), DatasetWeights(d, PersonColumns()))
	d.UpdateScoresParallelFactory(core.KindHeteroAll, all.CorePairScorerFactory(), workers)
	d.UpdateScoresParallelFactory(core.KindHeteroPerson, person.CorePairScorerFactory(), workers)
}

// UpdateDelta scores only the clusters a delta apply marked dirty
// (dl.Dirty()). The entropy weights are derived from the grown dataset's
// cluster representatives — exactly the weights a full UpdateParallel would
// use at this point — and already-scored pairs are never revisited, so
// delta-scoring after each apply matches full scoring bit for bit as long
// as scores were current before the delta.
func UpdateDelta(d *core.Dataset, dl *core.Delta, workers int) {
	all := NewScorer(AllColumns(), DatasetWeights(d, AllColumns()))
	person := NewScorer(PersonColumns(), DatasetWeights(d, PersonColumns()))
	d.UpdateScoresParallelFactoryOn(core.KindHeteroAll, all.CorePairScorerFactory(), workers, dl.Dirty())
	d.UpdateScoresParallelFactoryOn(core.KindHeteroPerson, person.CorePairScorerFactory(), workers, dl.Dirty())
}

// ClusterHeterogeneity returns the per-cluster heterogeneity (1 - mean pair
// similarity) of the given kind for clusters with at least two records.
func ClusterHeterogeneity(d *core.Dataset, kind string) []float64 {
	sims := d.ClusterScores(kind, core.AggMean)
	out := make([]float64, len(sims))
	for i, s := range sims {
		out[i] = core.HeteroFromSim(s)
	}
	return out
}

// PairHeterogeneities streams every stored pair heterogeneity of a kind.
func PairHeterogeneities(d *core.Dataset, kind string) []float64 {
	var out []float64
	d.PairScores(kind, func(_ *core.Cluster, _, _ int, sim float64) bool {
		out = append(out, core.HeteroFromSim(sim))
		return true
	})
	return out
}
