package hetero

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/voter"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestValueSimIdentity(t *testing.T) {
	if got := ValueSim("SMITH", "SMITH"); got != 1 {
		t.Errorf("identical = %v", got)
	}
	if got := ValueSim("", ""); got != 1 {
		t.Errorf("both empty = %v", got)
	}
}

func TestValueSimCaseDifferenceIsMild(t *testing.T) {
	caseOnly := ValueSim("SMITH", "smith")
	replaced := ValueSim("SMITH", "NGUYEN")
	typo := ValueSim("SMITH", "SMYTH")
	if caseOnly <= replaced {
		t.Errorf("case-only difference (%v) should score above full replacement (%v)", caseOnly, replaced)
	}
	if typo <= replaced {
		t.Errorf("typo (%v) should score above full replacement (%v)", typo, replaced)
	}
	// Case-only differences keep exactly the two lowercased comparisons at
	// 1, so the similarity is exactly 0.5 for an otherwise equal value.
	if !almost(caseOnly, 0.5) {
		t.Errorf("case-only = %v, want 0.5", caseOnly)
	}
}

func TestValueSimTokenConfusionIsMild(t *testing.T) {
	confused := ValueSim("ANH THI", "THI ANH")
	replaced := ValueSim("ANH THI", "XY ZW")
	if confused <= replaced {
		t.Errorf("token confusion (%v) should score above replacement (%v)", confused, replaced)
	}
	// The two Monge-Elkan comparisons see identical token sets, so at least
	// half the score is 1.
	if confused < 0.5 {
		t.Errorf("token confusion = %v, want >= 0.5", confused)
	}
}

func TestPairSimAndHeterogeneity(t *testing.T) {
	w := []float64{0.5, 0.5}
	a := []string{"SMITH", "JOHN"}
	b := []string{"SMITH", "JOHN"}
	if got := PairSim(a, b, w); got != 1 {
		t.Errorf("identical pair sim = %v", got)
	}
	if got := Heterogeneity(a, b, w); got != 0 {
		t.Errorf("identical pair heterogeneity = %v", got)
	}
	c := []string{"NGUYEN", "THI"}
	h := Heterogeneity(a, c, w)
	if h <= 0.3 || h > 1 {
		t.Errorf("replaced pair heterogeneity = %v", h)
	}
}

func TestEntropyWeightsFromRows(t *testing.T) {
	rows := [][]string{
		{"A", "X"},
		{"B", "X"},
		{"C", "X"},
	}
	w := EntropyWeightsFromRows(rows)
	if len(w) != 2 {
		t.Fatalf("weights = %v", w)
	}
	if !almost(w[0], 1) || !almost(w[1], 0) {
		t.Errorf("weights = %v, want [1 0]", w)
	}
	if EntropyWeightsFromRows(nil) != nil {
		t.Error("empty rows should yield nil weights")
	}
}

// buildDataset creates two clusters: one with a near-identical pair, one
// with a heavily differing pair.
func buildDataset(t *testing.T) *core.Dataset {
	t.Helper()
	mk := func(ncid, first, last, city string) voter.Record {
		r := voter.NewRecord()
		r.SetName("ncid", ncid)
		r.SetName("first_name", first)
		r.SetName("last_name", last)
		r.SetName("res_city_desc", city)
		return r
	}
	d := core.NewDataset(core.RemoveTrimmed)
	d.ImportSnapshot(voter.Snapshot{Date: "2008-01-01", Records: []voter.Record{
		mk("CLEAN", "JOHN", "SMITH", "DURHAM"),
		mk("CLEAN", "JOHN", "SMYTH", "DURHAM"),
		mk("DIRTY", "JOHN", "SMITH", "DURHAM"),
		mk("DIRTY", "JANETTE", "NGUYEN", "RALEIGH"),
	}})
	return d
}

func TestUpdateAndClusterHeterogeneity(t *testing.T) {
	d := buildDataset(t)
	Update(d)
	d.Publish()
	hs := ClusterHeterogeneity(d, core.KindHeteroPerson)
	if len(hs) != 2 {
		t.Fatalf("heterogeneities = %v", hs)
	}
	clean, dirty := hs[0], hs[1]
	if clean >= dirty {
		t.Errorf("clean cluster (%v) should be less heterogeneous than dirty (%v)", clean, dirty)
	}
	if clean < 0 || dirty > 1 {
		t.Errorf("heterogeneity out of range: %v %v", clean, dirty)
	}
	if clean == 0 {
		t.Error("near-duplicate with a typo should have non-zero heterogeneity")
	}
}

func TestPairHeterogeneitiesStream(t *testing.T) {
	d := buildDataset(t)
	Update(d)
	hs := PairHeterogeneities(d, core.KindHeteroAll)
	if len(hs) != 2 {
		t.Fatalf("pair heterogeneities = %v", hs)
	}
	for _, h := range hs {
		if h < 0 || h > 1 {
			t.Errorf("pair heterogeneity out of range: %v", h)
		}
	}
}

func TestDatasetWeightsUseOneRecordPerCluster(t *testing.T) {
	// The duplicate record must not influence the uniqueness estimate: the
	// last-name column has two distinct values among cluster
	// representatives even though one name appears three times over all
	// records.
	d := buildDataset(t)
	cols := []int{voter.IdxFirstName, voter.IdxLastName}
	w := DatasetWeights(d, cols)
	if len(w) != 2 {
		t.Fatalf("weights = %v", w)
	}
	// Representatives are (JOHN, SMITH) and (JOHN, SMITH): first names all
	// equal, last names all equal -> both entropies 0 -> uniform fallback.
	if !almost(w[0], 0.5) || !almost(w[1], 0.5) {
		t.Errorf("weights = %v, want uniform fallback", w)
	}
}

func TestScorerTrimsWhitespace(t *testing.T) {
	s := NewScorer([]int{voter.IdxLastName}, []float64{1})
	a := voter.NewRecord()
	b := voter.NewRecord()
	a.SetName("last_name", "SMITH  ")
	b.SetName("last_name", "SMITH")
	if got := s.PairSim(a, b); got != 1 {
		t.Errorf("whitespace-only difference scored %v, want 1", got)
	}
}

func TestAllColumnsExcludeNCID(t *testing.T) {
	for _, c := range AllColumns() {
		if c == voter.IdxNCID {
			t.Fatal("AllColumns includes the gold-standard NCID")
		}
	}
	if len(AllColumns()) != voter.NumAttributes-1 {
		t.Errorf("AllColumns = %d, want %d", len(AllColumns()), voter.NumAttributes-1)
	}
	if len(PersonColumns()) != 38 {
		t.Errorf("PersonColumns = %d, want 38", len(PersonColumns()))
	}
}

func BenchmarkValueSim(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ValueSim("CHRISTOPHER LEE", "KRISTOFFER L")
	}
}

func BenchmarkPersonPairSim(b *testing.B) {
	d := buildDataset(&testing.T{})
	s := NewScorer(PersonColumns(), DatasetWeights(d, PersonColumns()))
	a := d.Cluster("DIRTY").Records[0].Rec
	c := d.Cluster("DIRTY").Records[1].Rec
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.PairSim(a, c)
	}
}
