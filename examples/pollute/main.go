// Pollute: the paper's DaPo-hybrid future work (§8) — take a historical
// test dataset (real outdated values included) and inject additional
// synthetic errors at will, preserving the gold standard. The example
// shows the dirtiness and detection difficulty shifting with the pollution
// intensity.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/custom"
	"repro/internal/dapo"
	"repro/internal/dedup"
	"repro/internal/hetero"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)

	cfg := synth.DefaultConfig(31, 800)
	cfg.Snapshots = synth.Calendar(2008, 6)
	base := core.NewDataset(core.RemoveTrimmed)
	for _, s := range synth.Generate(cfg) {
		base.ImportSnapshot(s)
	}
	hetero.UpdateParallel(base, 0)
	base.Publish()
	fmt.Printf("base dataset: %d clusters, %d records\n\n", base.NumClusters(), base.NumRecords())

	fmt.Printf("%-10s %12s %14s %10s %10s\n", "variant", "records", "+duplicates", "avg het", "best F1")
	report("base", base, 0)

	for _, intensity := range []int{1, 2, 4} {
		pcfg := dapo.DefaultConfig(31)
		pcfg.RecordFraction = 0.5
		pcfg.Intensity = intensity
		pcfg.ExtraDuplicateRate = 0.3
		polluted, st := dapo.Pollute(base, pcfg)
		hetero.UpdateParallel(polluted, 0)
		report(fmt.Sprintf("dapo x%d", intensity), polluted, st.ExtraDuplicates)
	}
	fmt.Println("\nreal outdated values stay in every variant; synthetic errors are")
	fmt.Println("added on top at will — the strengths of both approaches combined.")
}

// report prints one variant's dirtiness and detectability.
func report(name string, d *core.Dataset, extra int) {
	avgHet := mean(hetero.ClusterHeterogeneity(d, core.KindHeteroPerson))
	ds := custom.Build(d, custom.Config{Name: name, HLow: 0, HHigh: 1, SelectTop: 120, Seed: 1})
	f1, _ := dedup.Evaluate(ds, dedup.MeasureMELev, 5, 20, 100).BestF1()
	fmt.Printf("%-10s %12d %14d %10.3f %10.3f\n", name, d.NumRecords(), extra, avgHet, f1)
}

func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}
