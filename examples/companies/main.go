// Companies: the paper's first future-work direction (§8) in action —
// applying the historical-corpus procedure to a different domain. A
// simulated commercial register (stable registration numbers, manual
// filings, rebrandings and relocations) runs through the generic pipeline:
// near-exact removal, heterogeneity profiling, and the detection substrate.
package main

import (
	"fmt"
	"log"

	"repro/internal/corpus"
	"repro/internal/dedup"
)

func main() {
	log.SetFlags(0)

	cfg := corpus.DefaultCompanyConfig(21, 600, 8)
	snaps := corpus.GenerateCompanies(cfg)
	fmt.Printf("simulated %d register snapshots\n", len(snaps))

	d := corpus.NewDataset(corpus.CompanySchema())
	for _, s := range snaps {
		st, err := d.ImportSnapshot(s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s: %5d rows, %4d new records, %3d new companies\n",
			st.Snapshot, st.Rows, st.NewRecords, st.NewObjects)
	}
	removed := d.TotalRows() - d.NumRecords()
	fmt.Printf("\ndeduplicated: %d rows -> %d records in %d clusters (%d pairs, %.1f%% removed)\n",
		d.TotalRows(), d.NumRecords(), d.NumClusters(), d.NumPairs(),
		100*float64(removed)/float64(d.TotalRows()))

	hs := d.ClusterHeterogeneity()
	fmt.Printf("heterogeneity: %d multi-record clusters, avg %.3f\n", len(hs), mean(hs))

	ds := d.Export()
	fmt.Println("\ndetection (same substrate as the voter experiments):")
	for _, m := range dedup.Measures {
		curve := dedup.Evaluate(ds, m, 4, 20, 100)
		f1, th := curve.BestF1()
		fmt.Printf("  %-12s best F1 %.3f @ threshold %.2f\n", m, f1, th)
	}
	fmt.Println("\nthe procedure generalizes: any snapshot corpus with a stable")
	fmt.Println("object id yields a labeled test dataset the same way.")
}

func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}
