// Errorprofile: run the paper's error-diversity analysis (Table 4) over a
// simulated register and the synthetic Census comparator, showing the
// characteristic contrast — small percentages but large absolute counts in
// the register, huge typo percentages in Census.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/errstats"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)

	cfg := synth.DefaultConfig(3, 1500)
	cfg.Snapshots = synth.Calendar(2008, 8)
	ds := core.NewDataset(core.RemoveTrimmed)
	for _, s := range synth.Generate(cfg) {
		ds.ImportSnapshot(s)
	}
	ds.Publish()

	nc := errstats.Analyze(errstats.FromDataset(ds))
	census := errstats.Analyze(censusInput())

	errstats.RenderText(os.Stdout, []errstats.Column{
		{Name: "NC (simulated register)", Table: nc},
		{Name: "Census comparator", Table: census},
	})
	fmt.Println("\nexpected shape: Census typo percentage dwarfs NC's, while NC")
	fmt.Println("offers error types Census lacks (value confusions, OCR errors).")
}

func censusInput() errstats.Input {
	ds := datasets.Census(3)
	in := errstats.Input{Attrs: ds.Attrs}
	in.Records = append(in.Records, ds.Records...)
	for _, idx := range ds.Clusters() {
		in.Clusters = append(in.Clusters, idx)
	}
	return in
}
