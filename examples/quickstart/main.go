// Quickstart: the whole pipeline in one file — simulate a small historical
// voter register, import it with near-exact duplicate removal, score
// plausibility and heterogeneity, and print the resulting test dataset's
// headline statistics.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hetero"
	"repro/internal/plaus"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)

	// 1. Simulate the historical register: 800 voters, 6 years of
	//    snapshots, realistic manual-entry errors.
	cfg := synth.DefaultConfig(42, 800)
	cfg.Snapshots = synth.Calendar(2008, 6)
	snapshots := synth.Generate(cfg)
	fmt.Printf("simulated %d snapshots\n", len(snapshots))

	// 2. Import them with the paper's "trimming" removal mode: rows that
	//    are exact duplicates after whitespace trimming (dates and age
	//    excluded) are dropped, everything else becomes a fuzzy duplicate.
	ds := core.NewDataset(core.RemoveTrimmed)
	totalRows := 0
	for _, s := range snapshots {
		st := ds.ImportSnapshot(s)
		totalRows += st.Rows
	}
	fmt.Printf("imported %d rows -> %d records in %d clusters (%d duplicate pairs)\n",
		totalRows, ds.NumRecords(), ds.NumClusters(), ds.NumPairs())
	fmt.Printf("removed %d near-exact duplicates (%.1f%%)\n",
		ds.RemovedRecords(), 100*float64(ds.RemovedRecords())/float64(totalRows))

	// 3. Score the gold standard's soundness and the duplicates' dirtiness.
	plaus.Update(ds)
	hetero.Update(ds)
	version := ds.Publish()

	ps := plaus.ClusterPlausibility(ds)
	hs := hetero.ClusterHeterogeneity(ds, core.KindHeteroPerson)
	fmt.Printf("published version %d\n", version)
	fmt.Printf("plausibility: avg %.3f over %d multi-record clusters\n", mean(ps), len(ps))
	fmt.Printf("heterogeneity: avg %.3f\n", mean(hs))

	// 4. Spot the most suspicious cluster — the candidate for removal or
	//    repair before using the gold standard.
	worstID, worst := "", 1.0
	ds.Clusters(func(c *core.Cluster) bool {
		if s, ok := c.ClusterScore(core.KindPlausibility, core.AggMin); ok && s < worst {
			worst, worstID = s, c.NCID
		}
		return true
	})
	if worstID != "" {
		fmt.Printf("most suspicious cluster: %s (plausibility %.2f)\n", worstID, worst)
		for _, e := range ds.Cluster(worstID).Records {
			fmt.Printf("  %s\n", e.Rec)
		}
	}
}

func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}
