// Customize: derive test datasets of chosen dirtiness (the paper's
// NC1/NC2/NC3) from one simulated register and show that detection
// difficulty follows the requested heterogeneity — the usability experiment
// of §6.5 in miniature.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/custom"
	"repro/internal/dedup"
	"repro/internal/hetero"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)

	// Build the big dataset once.
	cfg := synth.DefaultConfig(7, 1200)
	cfg.Snapshots = synth.Calendar(2008, 10)
	ds := core.NewDataset(core.RemoveTrimmed)
	sim := synth.New(cfg)
	for i := 0; i < sim.NumSnapshots(); i++ {
		ds.ImportSnapshot(sim.Next())
	}
	hetero.Update(ds)
	ds.Publish()
	fmt.Printf("source dataset: %d clusters, %d records\n\n", ds.NumClusters(), ds.NumRecords())

	// Three heterogeneity ranges, as in the paper.
	configs := []custom.Config{
		custom.NC1Config(7, 0, 80),
		custom.NC2Config(7, 0, 80),
		custom.NC3Config(7, 0, 80),
	}
	for _, c := range configs {
		out := custom.Build(ds, c)
		ch := custom.Describe(out)
		fmt.Printf("%s  [h in %.2f..%.2f]: %d records, %d clusters, %d pairs, avg heterogeneity %.3f\n",
			ch.Name, c.HLow, c.HHigh, ch.Records, ch.Clusters, ch.DupPairs, ch.AvgHetero)
		if ch.DupPairs == 0 {
			fmt.Println("  (no duplicate pairs at this scale — grow the source dataset)")
			continue
		}
		for _, m := range dedup.Measures {
			curve := dedup.Evaluate(out, m, 5, 20, 100)
			f1, th := curve.BestF1()
			fmt.Printf("  %-12s best F1 %.3f @ threshold %.2f\n", m, f1, th)
		}
		fmt.Println()
	}
	fmt.Println("expected shape: F1 decreases from NC1 to NC3, and the threshold")
	fmt.Println("choice matters more the dirtier the dataset (paper Fig. 5).")
}
