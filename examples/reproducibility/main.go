// Reproducibility: the paper's versioned-update story (Fig. 2 and §5.1.2).
// Import an initial batch of snapshots, publish version 1, persist the
// store; later import new snapshots into the same store, publish version 2;
// then reconstruct version 1 exactly and restrict the data to a snapshot
// range — all without ever deleting a record.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/docstore"
	"repro/internal/plaus"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "ncvoter-store-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cfg := synth.DefaultConfig(11, 500)
	cfg.Snapshots = synth.Calendar(2008, 6)
	snaps := synth.Generate(cfg)
	split := len(snaps) / 2

	// Version 1: the first half of the snapshot history.
	ds := core.NewDataset(core.RemoveTrimmed)
	for _, s := range snaps[:split] {
		ds.ImportSnapshot(s)
	}
	plaus.Update(ds)
	v1 := ds.Publish()
	recordsV1 := ds.NumRecords()
	if err := ds.ToDocDB().Save(dir); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published version %d: %d records, persisted to %s\n", v1, recordsV1, dir)

	// A later session: load the store and continue with new snapshots —
	// the update process of Fig. 2 (import -> update statistics ->
	// version & publish).
	db, err := docstore.Load(dir)
	if err != nil {
		log.Fatal(err)
	}
	ds2, err := core.FromDocDB(db)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range snaps[split:] {
		ds2.ImportSnapshot(s)
	}
	plaus.Update(ds2) // incremental: only new pairs are scored
	v2 := ds2.Publish()
	fmt.Printf("published version %d: %d records (monotone growth: +%d)\n",
		v2, ds2.NumRecords(), ds2.NumRecords()-recordsV1)

	// Reconstruct version 1 from the grown dataset: record counts and even
	// the stored pair scores match exactly.
	back := ds2.ReconstructVersion(v1)
	fmt.Printf("reconstructed version %d: %d records (expected %d, match=%v)\n",
		v1, back.NumRecords(), recordsV1, back.NumRecords() == recordsV1)

	// Restrict to an arbitrary snapshot interval (§5.1.2).
	from, to := snaps[1].Date, snaps[2].Date
	ranged := ds2.SnapshotRange(from, to)
	fmt.Printf("snapshot range %s..%s: %d records in %d clusters\n",
		from, to, ranged.NumRecords(), ranged.NumClusters())

	if back.NumRecords() != recordsV1 {
		log.Fatal("reproducibility violated: reconstruction mismatch")
	}
	fmt.Println("reproducibility holds: old evaluations can be repeated bit-exactly.")
}
