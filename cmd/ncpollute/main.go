// Command ncpollute applies the DaPo-hybrid pollution (the paper's future
// work, §8) to a stored test dataset: it injects additional synthetic
// errors and extra duplicates at will — on top of the real outdated values
// — and writes the polluted dataset into a new store. The gold standard is
// preserved exactly.
//
// Usage:
//
//	ncpollute -db store/ -out polluted-store/ -fraction 0.5 -intensity 2 -extra 0.3
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dapo"
	"repro/internal/docstore"
	"repro/internal/hetero"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ncpollute: ")
	var (
		db        = flag.String("db", "store", "input document-database directory")
		out       = flag.String("out", "polluted", "output document-database directory")
		seed      = flag.Int64("seed", 1, "pollution seed")
		fraction  = flag.Float64("fraction", 0.25, "fraction of records receiving extra errors")
		intensity = flag.Int("intensity", 1, "error-mix applications per polluted record")
		extra     = flag.Float64("extra", 0.2, "per-cluster probability of an extra synthetic duplicate")
		maxExtra  = flag.Int("maxextra", 1, "cap on synthetic duplicates per cluster")
		scores    = flag.Bool("scores", true, "recompute heterogeneity scores on the polluted data")
	)
	flag.Parse()

	stored, err := docstore.Load(*db)
	if err != nil {
		log.Fatal(err)
	}
	base, err := core.FromDocDB(stored)
	if err != nil {
		log.Fatal(err)
	}
	cfg := dapo.DefaultConfig(*seed)
	cfg.RecordFraction = *fraction
	cfg.Intensity = *intensity
	cfg.ExtraDuplicateRate = *extra
	cfg.MaxExtraPerCluster = *maxExtra

	polluted, st := dapo.Pollute(base, cfg)
	if *scores {
		fmt.Println("recomputing heterogeneity scores ...")
		hetero.UpdateParallel(polluted, 0)
	}
	if err := polluted.ToDocDB().Save(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("polluted %d of %d records, added %d synthetic duplicates\n",
		st.PollutedRecords, base.NumRecords(), st.ExtraDuplicates)
	fmt.Printf("wrote %d clusters / %d records -> %s\n", st.Clusters, st.Records, *out)
}
