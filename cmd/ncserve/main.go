// Command ncserve exposes a stored test dataset over a versioned read-only
// HTTP/JSON API — the exploration companion the paper gets from MongoDB
// Compass (§5) — hardened for production use: structured request logging,
// per-route metrics, panic recovery, per-request timeouts, in-flight
// limiting and graceful shutdown.
//
// Usage:
//
//	ncserve -db store/ -addr :8080 [-timeout 10s] [-max-inflight 256] [-grace 10s] [-store-workers 0]
//
// Endpoints (unversioned paths 301 to their /v1 twin):
//
//	GET /v1/stats                 dataset-level statistics
//	GET /v1/years                 per-year import history (Table 1)
//	GET /v1/histogram             cluster-size histogram (Fig. 1)
//	GET /v1/versions              published versions
//	GET /v1/clusters/{ncid}       one cluster document
//	GET /v1/clusters/summary      whole-store aggregation (parallel scan;
//	                              ?minSize=&maxSize= filters via the
//	                              pipeline's index pushdown)
//	GET /v1/clusters?score=heterogeneity&min=0.4&limit=20&cursor=...
//	                              score-range queries over cluster
//	                              summaries, cursor-paginated
//	GET /metrics                  per-route counters and latency quantiles
//	                              (JSON; ?format=prometheus for text)
//
// On SIGINT/SIGTERM the server stops accepting connections, drains
// in-flight requests for up to -grace, then exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/docstore"
	"repro/internal/httpapi"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ncserve: ")
	var (
		db           = flag.String("db", "store", "document-database directory")
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address")
		timeout      = flag.Duration("timeout", 10*time.Second, "per-request deadline (0 disables)")
		inflight     = flag.Int("max-inflight", 256, "max concurrently served requests (0 disables shedding)")
		grace        = flag.Duration("grace", 10*time.Second, "shutdown drain deadline")
		storeWorkers = flag.Int("store-workers", 0, "document-store load and scan workers (0 = all cores); results are identical at any count")
	)
	flag.Parse()

	stored, err := docstore.LoadParallelOpts(*db, docstore.LoadOpts{Workers: *storeWorkers})
	if err != nil {
		log.Fatal(err)
	}
	ds, err := core.FromDocDBParallel(stored, *storeWorkers)
	if err != nil {
		log.Fatal(err)
	}
	api := httpapi.New(ds,
		httpapi.WithTimeout(*timeout),
		httpapi.WithMaxInflight(*inflight),
		httpapi.WithStoreWorkers(*storeWorkers),
	)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Printf("serving %d clusters / %d records from %s on http://%s\n",
		ds.NumClusters(), ds.NumRecords(), *db, *addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("signal received, draining for up to %s", *grace)
		sctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("shutdown: %v", err)
			os.Exit(1)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("serve: %v", err)
			os.Exit(1)
		}
		log.Printf("drained cleanly")
	}
}
