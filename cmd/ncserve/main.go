// Command ncserve exposes a stored test dataset over a read-only HTTP/JSON
// API — the exploration companion the paper gets from MongoDB Compass (§5).
//
// Usage:
//
//	ncserve -db store/ -addr :8080
//
// Endpoints:
//
//	GET /stats                 dataset-level statistics
//	GET /years                 per-year import history (Table 1)
//	GET /histogram             cluster-size histogram (Fig. 1)
//	GET /versions              published versions
//	GET /clusters/{ncid}       one cluster document
//	GET /clusters?score=plausibility&max=0.8&limit=50
//	                           score-range queries over cluster summaries
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"repro/internal/core"
	"repro/internal/docstore"
	"repro/internal/httpapi"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ncserve: ")
	var (
		db   = flag.String("db", "store", "document-database directory")
		addr = flag.String("addr", "127.0.0.1:8080", "listen address")
	)
	flag.Parse()

	stored, err := docstore.Load(*db)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := core.FromDocDB(stored)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving %d clusters / %d records from %s on http://%s\n",
		ds.NumClusters(), ds.NumRecords(), *db, *addr)
	log.Fatal(http.ListenAndServe(*addr, httpapi.New(ds)))
}
