// Command ncserve exposes a stored test dataset over a versioned read-only
// HTTP/JSON API — the exploration companion the paper gets from MongoDB
// Compass (§5) — hardened for high-QPS production use: requests are served
// from immutable, generation-stamped serving snapshots swapped in
// atomically, with a bounded LRU response cache on the hot aggregate
// endpoints, plus structured request logging, per-route metrics, panic
// recovery, per-request timeouts, in-flight limiting and graceful shutdown.
//
// Usage:
//
//	ncserve -db store/ -addr :8080 [-timeout 10s] [-max-inflight 256]
//	        [-grace 10s] [-store-workers 0] [-cache 1024] [-snapshot]
//
// Endpoints (unversioned paths redirect to their /v1 twin — 301 for
// GET/HEAD, 308 otherwise). Every /v1 response is a {data, meta, error}
// envelope carrying the snapshot generation (also exposed as the
// X-Dataset-Generation header and a strong ETag; If-None-Match revalidates
// with 304 until the next reload):
//
//	GET /v1/stats                 dataset-level statistics
//	GET /v1/years                 per-year import history (Table 1)
//	GET /v1/histogram             cluster-size histogram (Fig. 1)
//	GET /v1/versions              published versions
//	GET /v1/provenance            the store's hash-chained provenance
//	                              record (404 when the store has none)
//	GET /v1/records/{ncid}        one person's record view (O(1) lookup)
//	GET /v1/clusters/{ncid}       one cluster document
//	GET /v1/clusters/summary      aggregation over the served clusters
//	                              (?minSize=&maxSize= filters)
//	GET /v1/clusters?score=heterogeneity&min=0.4&limit=20&cursor=...
//	                              score-range queries over cluster
//	                              summaries, cursor-paginated
//	GET /v1/healthz               readiness (503 until the first snapshot)
//	GET /v1/livez                 liveness (200 as soon as the process is up)
//	GET /metrics                  per-route counters and latency quantiles
//	                              (JSON; ?format=prometheus for text)
//
// The listener binds before the corpus loads: /v1/livez answers
// immediately, /v1/healthz flips from 503 to 200 when the first snapshot is
// published. SIGHUP reloads the database directory and swaps the new
// generation in atomically — in-flight requests keep their generation, and
// a failed reload keeps the old one serving. Reloads decode through a
// persistent segment cache: segments whose manifest CRC is unchanged since
// the previous load (everything a dirty-segment `ncimport -delta` save kept
// on disk) are not re-read, so reload cost tracks the changed fraction of
// the store rather than its size. On SIGINT/SIGTERM the server
// stops accepting connections, drains in-flight requests for up to -grace,
// then exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/docstore"
	"repro/internal/httpapi"
	"repro/internal/provenance"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ncserve: ")
	var (
		db           = flag.String("db", "store", "document-database directory")
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address")
		timeout      = flag.Duration("timeout", 10*time.Second, "per-request deadline (0 disables)")
		inflight     = flag.Int("max-inflight", 256, "max concurrently served requests (0 disables shedding)")
		grace        = flag.Duration("grace", 10*time.Second, "shutdown drain deadline")
		storeWorkers = flag.Int("store-workers", 0, "document-store load and scan workers (0 = all cores); results are identical at any count")
		cacheSize    = flag.Int("cache", 1024, "response-cache entries (negative disables)")
		snapshot     = flag.Bool("snapshot", true, "serve from precomputed read-optimized snapshots (false: compute per request against the store)")
	)
	flag.Parse()

	api := httpapi.NewDeferred(
		httpapi.WithTimeout(*timeout),
		httpapi.WithMaxInflight(*inflight),
		httpapi.WithStoreWorkers(*storeWorkers),
		httpapi.WithSnapshotServing(*snapshot),
		httpapi.WithResponseCache(*cacheSize),
	)

	// load reads the database directory and publishes it as the next
	// serving generation. On reload, any failure leaves the previous
	// generation serving untouched. The segment cache persists across
	// reloads: after `ncimport -delta` rewrote only the dirty segments, the
	// SIGHUP reload re-reads and re-parses exactly those — every unchanged
	// segment (same manifest CRC) resolves to its already decoded documents.
	// Sharing decoded documents between generations is safe here because the
	// serving path never mutates them.
	cache := docstore.NewSegmentCache()
	load := func() error {
		stored, err := docstore.LoadParallelOpts(*db, docstore.LoadOpts{Workers: *storeWorkers, Cache: cache})
		if err != nil {
			return err
		}
		ds, err := core.FromDocDBParallel(stored, *storeWorkers)
		if err != nil {
			return err
		}
		// Pick up the store's provenance record for /v1/provenance. A store
		// without one (or with a record this build rejects) serves 404 on
		// that endpoint; it is not a reason to refuse the corpus.
		var record []byte
		if rec, raw, perr := provenance.LoadRecord(nil, *db); perr != nil {
			if raw != nil { // a record exists but does not decode/validate
				log.Printf("ignoring %s: %v", provenance.RecordPath(*db), perr)
			}
		} else if serr := rec.SelfCheck(); serr != nil {
			log.Printf("ignoring %s: %v", provenance.RecordPath(*db), serr)
		} else {
			record = raw
		}
		gen := api.PublishWithProvenance(ds, record)
		log.Printf("generation %d: serving %d clusters / %d records from %s",
			gen, ds.NumClusters(), ds.NumRecords(), *db)
		return nil
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Bind first, load second: liveness is immediate and readiness is
	// honest — /v1/healthz answers 503 until the first snapshot lands.
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("listening on http://%s (readiness pending first load)\n", *addr)

	if err := load(); err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)

	for {
		select {
		case err := <-errc:
			log.Fatal(err)
		case <-hup:
			log.Printf("SIGHUP: reloading %s", *db)
			if err := load(); err != nil {
				log.Printf("reload failed, keeping generation %d: %v", api.Generation(), err)
			}
		case <-ctx.Done():
			stop()
			log.Printf("signal received, draining for up to %s", *grace)
			sctx, cancel := context.WithTimeout(context.Background(), *grace)
			defer cancel()
			if err := srv.Shutdown(sctx); err != nil {
				log.Printf("shutdown: %v", err)
				os.Exit(1)
			}
			if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("serve: %v", err)
				os.Exit(1)
			}
			log.Printf("drained cleanly")
			return
		}
	}
}
