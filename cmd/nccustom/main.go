// Command nccustom extracts a customized test dataset from a stored test
// dataset by heterogeneity range (the paper's NC1/NC2/NC3 recipe, §6.5):
// sample clusters, drop records whose heterogeneity to preceding kept
// records leaves [hlow, hhigh], keep the largest clusters, and write the
// result as a labeled TSV restricted to the person attributes.
//
// Usage:
//
//	nccustom -db store/ -name NC2 -hlow 0.2 -hhigh 0.4 -sample 100000 -top 10000 -out nc2.tsv
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/custom"
	"repro/internal/docstore"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nccustom: ")
	var (
		db     = flag.String("db", "store", "document-database directory")
		name   = flag.String("name", "NC", "output dataset name")
		hlow   = flag.Float64("hlow", 0.06, "lower heterogeneity bound")
		hhigh  = flag.Float64("hhigh", 0.2, "upper heterogeneity bound")
		sample = flag.Int("sample", 0, "clusters to sample (0 = all)")
		top    = flag.Int("top", 0, "largest clusters to keep (0 = all)")
		seed   = flag.Int64("seed", 1, "sampling seed")
		out    = flag.String("out", "custom.tsv", "output dataset file")
	)
	flag.Parse()

	stored, err := docstore.Load(*db)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := core.FromDocDB(stored)
	if err != nil {
		log.Fatal(err)
	}
	cfg := custom.Config{
		Name: *name, HLow: *hlow, HHigh: *hhigh,
		SampleClusters: *sample, SelectTop: *top, Seed: *seed,
	}
	result := custom.Build(ds, cfg)
	if err := result.WriteFile(*out); err != nil {
		log.Fatal(err)
	}
	ch := custom.Describe(result)
	fmt.Printf("%s: %d records, %d clusters (%d non-singleton), %d duplicate pairs\n",
		ch.Name, ch.Records, ch.Clusters, ch.NonSingletons, ch.DupPairs)
	fmt.Printf("cluster size avg %.2f max %d | heterogeneity avg %.3f max %.3f\n",
		ch.AvgCluster, ch.MaxCluster, ch.AvgHetero, ch.MaxHetero)
	fmt.Printf("wrote %s\n", *out)
}
