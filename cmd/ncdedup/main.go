// Command ncdedup evaluates the duplicate-detection pipelines of the
// paper's usability experiment on a labeled dataset: pluggable candidate
// generation (multi-pass Sorted Neighborhood and/or trigram minhash
// banding, see docs/BLOCKING.md), entropy-weighted record similarity with
// best 1:1 name matching, and a full threshold sweep per measure.
//
// Usage:
//
//	ncdedup -in nc2.tsv -passes 5 -window 20
//	ncdedup -in nc2.tsv -block snm,trigram -passes 'last_name+zip_code,soundex(last_name)'
//	ncdedup -in nc2.tsv -workers 8             # parallel blocking + scoring, identical output
//	ncdedup -in nc2.tsv -stream -workers 8     # fused streaming pipeline, bounded memory
//	ncdedup -db store/ -store-workers 8        # store-backed evaluation mode
//
// -passes takes either an integer k (one SNM pass per the k most unique
// attributes — the paper's §6.5 setup) or comma-separated pass-key specs
// (components joined by +: attribute names, soundex(attr), prefix(attr,n)).
//
// With -db the labeled dataset is derived from a stored corpus instead of
// a TSV export (the store-backed evaluation mode): the store loads through
// the parallel segmented reader, the clusters parse on -store-workers
// cores, and every record is kept (the full heterogeneity range), so the
// evaluation covers the store as-is.
//
// With -stream the blocking layer never materializes the candidate union:
// pairs flow to the scoring workers as bounded batches (-batch pairs per
// batch, -stream-buffer batches in flight), so peak memory is independent
// of the candidate count. Quality curves are bit-identical to the
// materialized path; blocking re-runs per measure, the price of never
// holding the pair set.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/custom"
	"repro/internal/dedup"
	"repro/internal/docstore"
	"repro/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ncdedup: ")
	var (
		in           = flag.String("in", "", "labeled dataset file (from nccustom); mutually exclusive with the -db store-backed mode")
		db           = flag.String("db", "", "document-store directory to evaluate directly (store-backed evaluation mode: loads the segmented store in parallel and derives the labeled dataset from it instead of a TSV export)")
		block        = flag.String("block", "snm", "comma-separated candidate blockers: snm, trigram (their pair union is deduplicated before scoring)")
		passesS      = flag.String("passes", "5", "SNM passes: an integer k (k most-unique attributes, the paper's setup) or comma-separated key specs like 'last_name+zip_code,soundex(first_name),prefix(last_name,4)'")
		window       = flag.Int("window", 20, "SNM window size (records per sorted-neighborhood slide)")
		trigramAttrs = flag.String("trigram-attrs", "", "comma-separated attribute names the trigram blocker signs (default: the dataset's name attributes)")
		bands        = flag.Int("bands", blocking.DefaultBands, "trigram minhash bands (more bands = higher recall)")
		rows         = flag.Int("rows", blocking.DefaultRows, "trigram minhash rows per band (more rows = stricter band matches)")
		maxBucket    = flag.Int("max-bucket", blocking.DefaultMaxBucket, "trigram bucket size cap bounding the quadratic pair blow-up (negative = unlimited)")
		steps        = flag.Int("steps", 100, "threshold sweep steps")
		curves       = flag.Bool("curves", false, "print the full F1 curve per measure")
		workers      = flag.Int("workers", 1, "blocking and scoring workers; >1 runs the parallel engines, with results bit-identical to sequential in both -in and -db store-backed modes")
		stream       = flag.Bool("stream", false, "fuse blocking into scoring: candidates flow to the workers as bounded batches, never materializing the pair union; curves are bit-identical to the materialized path")
		batch        = flag.Int("batch", blocking.DefaultStreamBatch, "pairs per streamed batch (-stream)")
		streamBuffer = flag.Int("stream-buffer", blocking.DefaultStreamBuffer, "batches buffered between blocking and scoring (-stream); with -batch this bounds the pairs in flight, negative = unbuffered lockstep")
		storeWorkers = flag.Int("store-workers", 0, "document-store load workers for the -db store-backed mode (0 = all cores)")
		metricsAddr  = flag.String("metrics-addr", "", "serve GET /metrics (JSON and Prometheus) with the blocking_pipeline_total and score_pipeline_total counters on this address during the run (e.g. :9090)")
		verbose      = flag.Bool("v", false, "print per-stage wall times (blocking, preprocessing, scoring, merge)")
	)
	flag.Parse()
	if (*in == "") == (*db == "") {
		log.Fatal("need exactly one of -in (dataset file) or -db (document store)")
	}

	metrics := obs.NewMetrics()
	if *metricsAddr != "" {
		go func() {
			mux := http.NewServeMux()
			mux.Handle("GET /metrics", metrics.Handler())
			log.Printf("metrics on http://%s/metrics", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
	}

	var ds *dedup.Dataset
	if *db != "" {
		stored, err := docstore.LoadParallelOpts(*db, docstore.LoadOpts{Workers: *storeWorkers, Observer: metrics})
		if err != nil {
			log.Fatal(err)
		}
		cds, err := core.FromDocDBParallel(stored, *storeWorkers)
		if err != nil {
			log.Fatal(err)
		}
		// The full heterogeneity range keeps every record: the evaluation
		// runs against the store as-is rather than a customization of it.
		ds = custom.Build(cds, custom.Config{Name: *db, HLow: 0, HHigh: 1})
	} else {
		var err error
		ds, err = dedup.ReadFile(*in)
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("%s: %d records, %d clusters, %d true duplicate pairs\n",
		ds.Name, ds.NumRecords(), ds.NumClusters(), ds.NumTruePairs())

	cfg, err := blockConfig(ds, *block, *passesS, *window, *trigramAttrs, *bands, *rows, *maxBucket)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Workers = *workers
	cfg.Observer = metrics

	// stages accumulates wall time per pipeline stage for -v, mirroring
	// ncimport. In stream mode the blocking stage runs concurrently with
	// scoring, so its time overlaps the scoring stage rather than adding to
	// the total.
	stages := map[string]time.Duration{}
	var stageOrder []string
	addStage := func(name string, d time.Duration) {
		if _, seen := stages[name]; !seen {
			stageOrder = append(stageOrder, name)
		}
		stages[name] += d
	}
	opts := dedup.ScoreOpts{Workers: *workers, Observer: metrics, OnStage: addStage}

	if *stream {
		evalStreamed(ds, cfg, opts, *steps, *batch, *streamBuffer, *curves, addStage)
	} else {
		evalMaterialized(ds, cfg, opts, *steps, *workers, *curves, addStage)
	}
	printStageTimings(*verbose, stageOrder, stages)
}

// evalMaterialized is the classic flow: generate the full candidate union
// once, then score it per measure.
func evalMaterialized(ds *dedup.Dataset, cfg blocking.Config, opts dedup.ScoreOpts, steps, workers int, curves bool, addStage func(string, time.Duration)) {
	start := time.Now()
	cands, stats := blocking.Generate(ds, cfg)
	addStage("blocking", time.Since(start))
	printBlockingStats(cfg, stats, blocking.Recall(ds, cands))

	for _, m := range dedup.Measures {
		var curve dedup.Curve
		if workers > 1 {
			curve = dedup.EvaluateCandidatesParallel(ds, m, cands, steps, opts)
		} else {
			start := time.Now()
			curve = dedup.EvaluateCandidates(ds, m, cands, steps)
			addStage("scoring", time.Since(start))
		}
		printCurve(m, curve, curves)
	}
}

// evalStreamed is the fused flow: one GenerateStream per measure feeds the
// scoring workers directly, so the candidate union never exists in memory.
// The blocking summary prints after the first measure, when its stats are
// complete.
func evalStreamed(ds *dedup.Dataset, cfg blocking.Config, opts dedup.ScoreOpts, steps, batch, buffer int, curves bool, addStage func(string, time.Duration)) {
	sopts := blocking.StreamOpts{BatchSize: batch, Buffer: buffer}
	addStage("blocking", 0) // fix the stage order; blocking overlaps scoring here
	for i, m := range dedup.Measures {
		scfg := cfg
		if i > 0 {
			// Blocking counters were reported with the first stream; the
			// re-runs for the remaining measures are repeats, not new work.
			scfg.Observer = nil
		}
		s := blocking.GenerateStream(ds, scfg, sopts)
		mopts := opts
		mopts.Recycle = s.Recycle
		curve := dedup.EvaluateCandidatesStream(ds, m, s.C, steps, mopts)
		addStage("blocking", s.Elapsed())
		if i == 0 {
			// Recall at threshold 0 classifies every streamed candidate a
			// duplicate — exactly the blocking recall.
			printBlockingStats(scfg, s.Stats(), curve.Points[0].Recall)
		}
		printCurve(m, curve, curves)
	}
}

func printBlockingStats(cfg blocking.Config, stats blocking.Stats, recall float64) {
	for _, p := range stats.SNMPasses {
		fmt.Printf("blocking: snm pass %-28s window %-3d %8d pairs\n", p.Name, p.Window, p.Pairs)
	}
	if cfg.Trigram != nil {
		fmt.Printf("blocking: trigram banding %dx%d %17d pairs (%d buckets, %d skipped oversize)\n",
			cfg.Trigram.Bands, cfg.Trigram.Rows, stats.TrigramPairs, stats.Buckets, stats.OversizeBuckets)
	}
	fmt.Printf("blocking: %d unique candidate pairs (%d emitted), recall %.3f\n",
		stats.Unique, stats.Emitted, recall)
}

func printCurve(m dedup.Measure, curve dedup.Curve, full bool) {
	f1, th := curve.BestF1()
	fmt.Printf("%-12s best F1 %.3f at threshold %.2f\n", m, f1, th)
	if full {
		for _, p := range curve.Points {
			fmt.Printf("  t=%.2f precision %.3f recall %.3f F1 %.3f\n",
				p.Threshold, p.Precision, p.Recall, p.F1)
		}
	}
}

// printStageTimings mirrors ncimport -v.
func printStageTimings(verbose bool, order []string, stages map[string]time.Duration) {
	if !verbose {
		return
	}
	fmt.Println("stage timings:")
	for _, name := range order {
		fmt.Printf("  %-13s %9.3fs\n", name, stages[name].Seconds())
	}
}

// blockConfig assembles the blocking configuration from the flag values.
func blockConfig(ds *dedup.Dataset, block, passesS string, window int, trigramAttrs string, bands, rows, maxBucket int) (blocking.Config, error) {
	cfg := blocking.Config{Window: window}
	useSNM, useTrigram := false, false
	for _, b := range strings.Split(block, ",") {
		switch strings.TrimSpace(b) {
		case "snm":
			useSNM = true
		case "trigram":
			useTrigram = true
		case "":
		default:
			return cfg, fmt.Errorf("unknown blocker %q (want snm, trigram)", strings.TrimSpace(b))
		}
	}
	if !useSNM && !useTrigram {
		return cfg, fmt.Errorf("-block %q selects no blocker", block)
	}
	if useSNM {
		if k, err := strconv.Atoi(strings.TrimSpace(passesS)); err == nil {
			if k < 1 {
				return cfg, fmt.Errorf("-passes %d: need at least one pass", k)
			}
			cfg.Passes = blocking.EntropyPasses(ds, k)
		} else {
			passes, err := blocking.ParsePasses(ds, passesS)
			if err != nil {
				return cfg, err
			}
			cfg.Passes = passes
		}
	}
	if useTrigram {
		tc := &blocking.TrigramConfig{Bands: bands, Rows: rows, MaxBucket: maxBucket}
		if trigramAttrs != "" {
			for _, name := range strings.Split(trigramAttrs, ",") {
				idx, err := blocking.AttrIndex(ds, strings.TrimSpace(name))
				if err != nil {
					return cfg, err
				}
				tc.Attrs = append(tc.Attrs, idx)
			}
		}
		cfg.Trigram = tc
	}
	return cfg, nil
}
