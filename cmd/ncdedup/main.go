// Command ncdedup evaluates the three duplicate-detection pipelines of the
// paper's usability experiment on a labeled dataset file: multi-pass
// Sorted Neighborhood blocking, entropy-weighted record similarity with
// best 1:1 name matching, and a full threshold sweep per measure.
//
// Usage:
//
//	ncdedup -in nc2.tsv -passes 5 -window 20
//	ncdedup -in nc2.tsv -workers 8   # parallel scoring engine, identical output
//	ncdedup -db store/ -store-workers 8   # evaluate a document store directly
//
// With -db the labeled dataset is derived from a stored corpus instead of a
// TSV export: the store loads through the parallel segmented reader, the
// clusters parse on -store-workers cores, and every record is kept (the
// full heterogeneity range), so the evaluation covers the store as-is.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/custom"
	"repro/internal/dedup"
	"repro/internal/docstore"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ncdedup: ")
	var (
		in           = flag.String("in", "", "labeled dataset file (from nccustom)")
		db           = flag.String("db", "", "document-database directory to evaluate instead of -in")
		passes       = flag.Int("passes", 5, "SNM passes over the most unique attributes")
		window       = flag.Int("window", 20, "SNM window size")
		steps        = flag.Int("steps", 100, "threshold sweep steps")
		curves       = flag.Bool("curves", false, "print the full F1 curve per measure")
		workers      = flag.Int("workers", 1, "scoring workers; >1 uses the parallel engine (identical results)")
		storeWorkers = flag.Int("store-workers", 0, "document-store load workers for -db (0 = all cores)")
	)
	flag.Parse()
	if (*in == "") == (*db == "") {
		log.Fatal("need exactly one of -in (dataset file) or -db (document store)")
	}

	var ds *dedup.Dataset
	if *db != "" {
		stored, err := docstore.LoadParallelOpts(*db, docstore.LoadOpts{Workers: *storeWorkers})
		if err != nil {
			log.Fatal(err)
		}
		cds, err := core.FromDocDBParallel(stored, *storeWorkers)
		if err != nil {
			log.Fatal(err)
		}
		// The full heterogeneity range keeps every record: the evaluation
		// runs against the store as-is rather than a customization of it.
		ds = custom.Build(cds, custom.Config{Name: *db, HLow: 0, HHigh: 1})
	} else {
		var err error
		ds, err = dedup.ReadFile(*in)
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("%s: %d records, %d clusters, %d true duplicate pairs\n",
		ds.Name, ds.NumRecords(), ds.NumClusters(), ds.NumTruePairs())

	keys := dedup.MostUniqueAttrs(ds, *passes)
	cands := dedup.SortedNeighborhood(ds, keys, *window)
	fmt.Printf("blocking: %d candidate pairs over %d passes (window %d), recall %.3f\n",
		len(cands), len(keys), *window, dedup.BlockingRecall(ds, cands))

	for _, m := range dedup.Measures {
		var curve dedup.Curve
		if *workers > 1 {
			curve = dedup.EvaluateCandidatesParallel(ds, m, cands, *steps, dedup.ScoreOpts{Workers: *workers})
		} else {
			curve = dedup.EvaluateCandidates(ds, m, cands, *steps)
		}
		f1, th := curve.BestF1()
		fmt.Printf("%-12s best F1 %.3f at threshold %.2f\n", m, f1, th)
		if *curves {
			for _, p := range curve.Points {
				fmt.Printf("  t=%.2f precision %.3f recall %.3f F1 %.3f\n",
					p.Threshold, p.Precision, p.Recall, p.F1)
			}
		}
	}
}
