// Command ncdedup evaluates the duplicate-detection pipelines of the
// paper's usability experiment on a labeled dataset: pluggable candidate
// generation (multi-pass Sorted Neighborhood and/or trigram minhash
// banding, see docs/BLOCKING.md), entropy-weighted record similarity with
// best 1:1 name matching, and a full threshold sweep per measure.
//
// Usage:
//
//	ncdedup -in nc2.tsv -passes 5 -window 20
//	ncdedup -in nc2.tsv -block snm,trigram -passes 'last_name+zip_code,soundex(last_name)'
//	ncdedup -in nc2.tsv -workers 8             # parallel blocking + scoring, identical output
//	ncdedup -db store/ -store-workers 8        # store-backed evaluation mode
//
// -passes takes either an integer k (one SNM pass per the k most unique
// attributes — the paper's §6.5 setup) or comma-separated pass-key specs
// (components joined by +: attribute names, soundex(attr), prefix(attr,n)).
//
// With -db the labeled dataset is derived from a stored corpus instead of
// a TSV export (the store-backed evaluation mode): the store loads through
// the parallel segmented reader, the clusters parse on -store-workers
// cores, and every record is kept (the full heterogeneity range), so the
// evaluation covers the store as-is.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/custom"
	"repro/internal/dedup"
	"repro/internal/docstore"
	"repro/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ncdedup: ")
	var (
		in           = flag.String("in", "", "labeled dataset file (from nccustom); mutually exclusive with the -db store-backed mode")
		db           = flag.String("db", "", "document-store directory to evaluate directly (store-backed evaluation mode: loads the segmented store in parallel and derives the labeled dataset from it instead of a TSV export)")
		block        = flag.String("block", "snm", "comma-separated candidate blockers: snm, trigram (their pair union is deduplicated before scoring)")
		passesS      = flag.String("passes", "5", "SNM passes: an integer k (k most-unique attributes, the paper's setup) or comma-separated key specs like 'last_name+zip_code,soundex(first_name),prefix(last_name,4)'")
		window       = flag.Int("window", 20, "SNM window size (records per sorted-neighborhood slide)")
		trigramAttrs = flag.String("trigram-attrs", "", "comma-separated attribute names the trigram blocker signs (default: the dataset's name attributes)")
		bands        = flag.Int("bands", blocking.DefaultBands, "trigram minhash bands (more bands = higher recall)")
		rows         = flag.Int("rows", blocking.DefaultRows, "trigram minhash rows per band (more rows = stricter band matches)")
		maxBucket    = flag.Int("max-bucket", blocking.DefaultMaxBucket, "trigram bucket size cap bounding the quadratic pair blow-up (negative = unlimited)")
		steps        = flag.Int("steps", 100, "threshold sweep steps")
		curves       = flag.Bool("curves", false, "print the full F1 curve per measure")
		workers      = flag.Int("workers", 1, "blocking and scoring workers; >1 runs the parallel engines, with results bit-identical to sequential in both -in and -db store-backed modes")
		storeWorkers = flag.Int("store-workers", 0, "document-store load workers for the -db store-backed mode (0 = all cores)")
		metricsAddr  = flag.String("metrics-addr", "", "serve GET /metrics (JSON and Prometheus) with the blocking_pipeline_total and score_pipeline_total counters on this address during the run (e.g. :9090)")
	)
	flag.Parse()
	if (*in == "") == (*db == "") {
		log.Fatal("need exactly one of -in (dataset file) or -db (document store)")
	}

	metrics := obs.NewMetrics()
	if *metricsAddr != "" {
		go func() {
			mux := http.NewServeMux()
			mux.Handle("GET /metrics", metrics.Handler())
			log.Printf("metrics on http://%s/metrics", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
	}

	var ds *dedup.Dataset
	if *db != "" {
		stored, err := docstore.LoadParallelOpts(*db, docstore.LoadOpts{Workers: *storeWorkers, Observer: metrics})
		if err != nil {
			log.Fatal(err)
		}
		cds, err := core.FromDocDBParallel(stored, *storeWorkers)
		if err != nil {
			log.Fatal(err)
		}
		// The full heterogeneity range keeps every record: the evaluation
		// runs against the store as-is rather than a customization of it.
		ds = custom.Build(cds, custom.Config{Name: *db, HLow: 0, HHigh: 1})
	} else {
		var err error
		ds, err = dedup.ReadFile(*in)
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("%s: %d records, %d clusters, %d true duplicate pairs\n",
		ds.Name, ds.NumRecords(), ds.NumClusters(), ds.NumTruePairs())

	cfg, err := blockConfig(ds, *block, *passesS, *window, *trigramAttrs, *bands, *rows, *maxBucket)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Workers = *workers
	cfg.Observer = metrics
	cands, stats := blocking.Generate(ds, cfg)
	for _, p := range stats.SNMPasses {
		fmt.Printf("blocking: snm pass %-28s window %-3d %8d pairs\n", p.Name, p.Window, p.Pairs)
	}
	if cfg.Trigram != nil {
		fmt.Printf("blocking: trigram banding %dx%d %17d pairs (%d buckets, %d skipped oversize)\n",
			cfg.Trigram.Bands, cfg.Trigram.Rows, stats.TrigramPairs, stats.Buckets, stats.OversizeBuckets)
	}
	fmt.Printf("blocking: %d unique candidate pairs (%d emitted), recall %.3f\n",
		stats.Unique, stats.Emitted, blocking.Recall(ds, cands))

	for _, m := range dedup.Measures {
		var curve dedup.Curve
		if *workers > 1 {
			curve = dedup.EvaluateCandidatesParallel(ds, m, cands, *steps, dedup.ScoreOpts{Workers: *workers, Observer: metrics})
		} else {
			curve = dedup.EvaluateCandidates(ds, m, cands, *steps)
		}
		f1, th := curve.BestF1()
		fmt.Printf("%-12s best F1 %.3f at threshold %.2f\n", m, f1, th)
		if *curves {
			for _, p := range curve.Points {
				fmt.Printf("  t=%.2f precision %.3f recall %.3f F1 %.3f\n",
					p.Threshold, p.Precision, p.Recall, p.F1)
			}
		}
	}
}

// blockConfig assembles the blocking configuration from the flag values.
func blockConfig(ds *dedup.Dataset, block, passesS string, window int, trigramAttrs string, bands, rows, maxBucket int) (blocking.Config, error) {
	cfg := blocking.Config{Window: window}
	useSNM, useTrigram := false, false
	for _, b := range strings.Split(block, ",") {
		switch strings.TrimSpace(b) {
		case "snm":
			useSNM = true
		case "trigram":
			useTrigram = true
		case "":
		default:
			return cfg, fmt.Errorf("unknown blocker %q (want snm, trigram)", strings.TrimSpace(b))
		}
	}
	if !useSNM && !useTrigram {
		return cfg, fmt.Errorf("-block %q selects no blocker", block)
	}
	if useSNM {
		if k, err := strconv.Atoi(strings.TrimSpace(passesS)); err == nil {
			if k < 1 {
				return cfg, fmt.Errorf("-passes %d: need at least one pass", k)
			}
			cfg.Passes = blocking.EntropyPasses(ds, k)
		} else {
			passes, err := blocking.ParsePasses(ds, passesS)
			if err != nil {
				return cfg, err
			}
			cfg.Passes = passes
		}
	}
	if useTrigram {
		tc := &blocking.TrigramConfig{Bands: bands, Rows: rows, MaxBucket: maxBucket}
		if trigramAttrs != "" {
			for _, name := range strings.Split(trigramAttrs, ",") {
				idx, err := blocking.AttrIndex(ds, strings.TrimSpace(name))
				if err != nil {
					return cfg, err
				}
				tc.Attrs = append(tc.Attrs, idx)
			}
		}
		cfg.Trigram = tc
	}
	return cfg, nil
}
