// Command nccorpus demonstrates the generalized procedure (the paper's
// future work, §8) end-to-end on the built-in company-register domain:
// simulate the register, import its snapshots through the generic pipeline,
// print the statistics, and optionally export the labeled dataset for
// ncdedup.
//
// Usage:
//
//	nccorpus -companies 2000 -years 10 -out companies.tsv
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/corpus"
	"repro/internal/dedup"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nccorpus: ")
	var (
		domain  = flag.String("domain", "companies", "historical corpus domain: companies|publications")
		initial = flag.Int("initial", 1000, "initial objects in the register")
		years   = flag.Int("years", 8, "years of snapshot history")
		seed    = flag.Int64("seed", 1, "simulation seed")
		out     = flag.String("out", "", "optional labeled dataset output file")
		detect  = flag.Bool("detect", true, "run the three detection pipelines")
	)
	flag.Parse()

	var schema corpus.Schema
	var snaps []corpus.Snapshot
	switch *domain {
	case "companies":
		schema = corpus.CompanySchema()
		snaps = corpus.GenerateCompanies(corpus.DefaultCompanyConfig(*seed, *initial, *years))
	case "publications":
		schema = corpus.PublicationSchema()
		snaps = corpus.GeneratePublications(corpus.DefaultPublicationConfig(*seed, *initial, *years))
	default:
		log.Fatalf("unknown domain %q (companies|publications)", *domain)
	}

	d := corpus.NewDataset(schema)
	for _, s := range snaps {
		st, err := d.ImportSnapshot(s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("imported %s: %d rows, %d new records, %d new objects\n",
			st.Snapshot, st.Rows, st.NewRecords, st.NewObjects)
	}
	removed := d.TotalRows() - d.NumRecords()
	fmt.Printf("\n%d rows -> %d records in %d clusters (%d duplicate pairs, %.1f%% near-exact removed)\n",
		d.TotalRows(), d.NumRecords(), d.NumClusters(), d.NumPairs(),
		100*float64(removed)/float64(d.TotalRows()))

	hs := d.ClusterHeterogeneity()
	sum := 0.0
	for _, h := range hs {
		sum += h
	}
	if len(hs) > 0 {
		fmt.Printf("heterogeneity: %d multi-record clusters, avg %.3f\n", len(hs), sum/float64(len(hs)))
	}

	ds := d.Export()
	if *out != "" {
		if err := ds.WriteFile(*out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote labeled dataset to %s\n", *out)
	}
	if *detect {
		fmt.Println("\ndetection:")
		for _, m := range dedup.Measures {
			curve := dedup.Evaluate(ds, m, 4, 20, 100)
			f1, th := curve.BestF1()
			fmt.Printf("  %-12s best F1 %.3f @ threshold %.2f\n", m, f1, th)
		}
	}
}
