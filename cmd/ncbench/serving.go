package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http/httptest"

	"repro/internal/bench"
	"repro/internal/httpapi"
)

// runServingLatency stands the serving stack up in-process over the scored
// dataset, replays a mixed read workload against the /v1 surface, and
// prints the per-route latency quantiles the obs middleware collected —
// the serving-side counterpart of the generation benchmarks.
func runServingLatency(w *bench.Workspace, requests int, out io.Writer) {
	ds := w.ScoredDataset()
	api := httpapi.New(ds, httpapi.WithLogger(slog.New(slog.NewTextHandler(io.Discard, nil))))
	do := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		api.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	// Seed cluster ids for the point-lookup leg of the mix.
	var pg struct {
		Data []map[string]any `json:"data"`
	}
	if err := json.Unmarshal(do("/v1/clusters?limit=100").Body.Bytes(), &pg); err != nil || len(pg.Data) == 0 {
		fmt.Fprintf(out, "serving latency: no clusters to query (%v)\n", err)
		return
	}
	ids := make([]string, 0, len(pg.Data))
	for _, it := range pg.Data {
		if id, ok := it["ncid"].(string); ok {
			ids = append(ids, id)
		}
	}

	for i := 0; i < requests; i++ {
		switch i % 4 {
		case 0:
			do("/v1/stats")
		case 1:
			do("/v1/clusters?score=heterogeneity&min=0.4&limit=20")
		case 2:
			do("/v1/clusters/" + ids[i%len(ids)])
		case 3:
			do("/v1/histogram")
		}
	}

	snap := api.Metrics().Snapshot()
	fmt.Fprintf(out, "Serving latency (%d requests, in-process)\n", requests)
	fmt.Fprintf(out, "  %-28s %9s %9s %9s %9s %9s\n", "route", "requests", "p50ms", "p90ms", "p99ms", "maxms")
	for _, r := range snap.Routes {
		fmt.Fprintf(out, "  %-28s %9d %9.3f %9.3f %9.3f %9.3f\n",
			r.Route, r.Requests, r.P50MS, r.P90MS, r.P99MS, r.MaxMS)
	}
}
