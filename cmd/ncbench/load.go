package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http/httptest"
	"os"
	"runtime"

	"repro/internal/bench"
	"repro/internal/httpapi"
	"repro/internal/loadgen"
)

// loadRun is one rung of the serving ladder in the JSON report.
type loadRun struct {
	Name        string         `json:"name"`
	Snapshot    bool           `json:"snapshot"`
	Cache       bool           `json:"cache"`
	CacheHits   int64          `json:"cacheHits"`
	CacheMisses int64          `json:"cacheMisses"`
	Result      loadgen.Result `json:"result"`
}

// loadReport is the BENCH_serving.json layout.
type loadReport struct {
	Dataset    map[string]any `json:"dataset"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Workers    int            `json:"workers"`
	Requests   int            `json:"requests"`
	Runs       []loadRun      `json:"runs"`
}

// maxLookupIDs bounds the NCID pool of the point-lookup leg so the mix
// revisits ids (the census pattern: hot ids repeat).
const maxLookupIDs = 256

// runServingLoad measures the serving ladder — direct docstore serving,
// response cache, precomputed snapshots, and both combined — under the same
// closed-loop mixed workload, prints the comparison, and writes the
// measurements to jsonPath. This is the experiment behind the tentpole
// claim: snapshots and caching must beat per-request store aggregation on
// both throughput and tail latency.
func runServingLoad(w *bench.Workspace, workers, requests int, jsonPath string, out io.Writer) error {
	ds := w.ScoredDataset()
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))

	// Seed the NCID pool for the point-lookup leg from a reference server.
	seedAPI := httpapi.New(ds, httpapi.WithLogger(logger))
	rec := httptest.NewRecorder()
	seedAPI.ServeHTTP(rec, httptest.NewRequest("GET", fmt.Sprintf("/v1/clusters?limit=%d", maxLookupIDs), nil))
	var pg struct {
		Data []map[string]any `json:"data"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &pg); err != nil || len(pg.Data) == 0 {
		return fmt.Errorf("serving load: no clusters to query (%v)", err)
	}
	recordPaths := make([]string, 0, len(pg.Data))
	for _, it := range pg.Data {
		if id, ok := it["ncid"].(string); ok {
			recordPaths = append(recordPaths, "/v1/records/"+id)
		}
	}

	// The census-style mix: point lookups dominate, the expensive aggregate
	// is hot, lists and stats ride along.
	targets := []loadgen.Target{
		{Route: "GET /v1/records/{ncid}", Paths: recordPaths, Weight: 5},
		{Route: "GET /v1/clusters/summary", Paths: []string{
			"/v1/clusters/summary", "/v1/clusters/summary?minSize=2",
		}, Weight: 2},
		{Route: "GET /v1/clusters", Paths: []string{
			"/v1/clusters?score=heterogeneity&min=0.4&limit=20",
		}, Weight: 1},
		{Route: "GET /v1/stats", Paths: []string{"/v1/stats"}, Weight: 1},
		{Route: "GET /v1/histogram", Paths: []string{"/v1/histogram"}, Weight: 1},
	}

	configs := []struct {
		name            string
		snapshot, cache bool
	}{
		{"direct", false, false},
		{"direct+cache", false, true},
		{"snapshot", true, false},
		{"snapshot+cache", true, true},
	}

	report := loadReport{
		Dataset: map[string]any{
			"clusters": ds.NumClusters(),
			"records":  ds.NumRecords(),
			"pairs":    ds.NumPairs(),
		},
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    workers,
		Requests:   requests,
	}

	fmt.Fprintf(out, "Serving load ladder (%d workers, %d requests, in-process)\n", workers, requests)
	fmt.Fprintf(out, "  %-16s %10s %8s %8s %8s %8s %10s\n",
		"config", "req/s", "p50ms", "p95ms", "p99ms", "maxms", "cache h/m")
	for _, cfg := range configs {
		opts := []httpapi.Option{
			httpapi.WithLogger(logger),
			httpapi.WithSnapshotServing(cfg.snapshot),
		}
		if !cfg.cache {
			opts = append(opts, httpapi.WithResponseCache(-1))
		}
		api := httpapi.New(ds, opts...)
		res := loadgen.Run(api, targets, loadgen.Config{Workers: workers, Requests: requests})
		if res.Errors > 0 {
			return fmt.Errorf("serving load %s: %d request errors", cfg.name, res.Errors)
		}
		run := loadRun{
			Name:        cfg.name,
			Snapshot:    cfg.snapshot,
			Cache:       cfg.cache,
			CacheHits:   api.Metrics().Counter("serving_cache_hits"),
			CacheMisses: api.Metrics().Counter("serving_cache_misses"),
			Result:      res,
		}
		report.Runs = append(report.Runs, run)
		fmt.Fprintf(out, "  %-16s %10.0f %8.3f %8.3f %8.3f %8.3f %5d/%d\n",
			cfg.name, res.ReqPerSec, res.P50MS, res.P95MS, res.P99MS, res.MaxMS,
			run.CacheHits, run.CacheMisses)
	}

	// Per-route comparison of the two poles of the ladder.
	first, last := report.Runs[0].Result, report.Runs[len(report.Runs)-1].Result
	fmt.Fprintf(out, "\n  per-route p99ms            %12s %15s\n", "direct", "snapshot+cache")
	for i, r := range first.Routes {
		fmt.Fprintf(out, "  %-28s %12.3f %15.3f\n", r.Route, r.P99MS, last.Routes[i].P99MS)
	}

	if jsonPath != "" {
		b, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nwrote %s\n", jsonPath)
	}
	return nil
}
