// Command ncbench regenerates the paper's tables and figures end-to-end at
// a configurable scale and prints them in the paper's layout. It is the
// harness behind EXPERIMENTS.md.
//
// Usage:
//
//	ncbench -scale small -exp all
//	ncbench -scale medium -exp table2,figure5
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ncbench: ")
	var (
		scaleS = flag.String("scale", "small", "experiment scale: tiny|small|medium|large")
		exp    = flag.String("exp", "all", "comma-separated experiments: table1,table2,table3,table4,figure1,figure3,figure4a,figure4b,figure4c,figure5,figure5cmp,ablations,scalesweep,serving,load,ingest,matching,blocking,docstore,delta,dedup (serving, load, ingest, matching, blocking, docstore, delta and dedup are opt-in, not part of all)")
		serveN = flag.Int("serve-requests", 2000, "requests replayed by the serving experiment")
		loadW  = flag.Int("load-workers", 8, "closed-loop workers of the load experiment")
		loadN  = flag.Int("load-requests", 4000, "timed requests of the load experiment")
		mjson  = flag.String("matching-json", "BENCH_matching.json", "JSON output path of the matching experiment (empty to skip)")
		bjson  = flag.String("blocking-json", "BENCH_blocking.json", "JSON output path of the blocking experiment (empty to skip)")
		djson  = flag.String("docstore-json", "BENCH_docstore.json", "JSON output path of the docstore experiment (empty to skip)")
		dljson = flag.String("delta-json", "BENCH_delta.json", "JSON output path of the delta experiment (empty to skip)")
		dlwork = flag.Int("delta-workers", 0, "workers of the delta experiment (0 = GOMAXPROCS)")
		ddjson = flag.String("dedup-json", "BENCH_dedup.json", "JSON output path of the end-to-end dedup experiment (empty to skip)")
		ddrec  = flag.Int("dedup-records", bench.DefaultDedupRecords, "corpus size of the end-to-end dedup experiment")
		ddwork = flag.Int("dedup-workers", 0, "workers of the end-to-end dedup experiment (0 = GOMAXPROCS)")
		sjson  = flag.String("serving-json", "BENCH_serving.json", "JSON output path of the load experiment (empty to skip)")
		top    = flag.Int("top", 100, "clusters per NC1-NC3 customization")
		seed   = flag.Int64("seed", 1, "workspace seed")
		mdPath = flag.String("md", "", "also write a markdown report of the run to this file")
	)
	flag.Parse()

	var scale bench.Scale
	switch *scaleS {
	case "tiny":
		scale = bench.Tiny
	case "small":
		scale = bench.Small
	case "medium":
		scale = bench.Medium
	case "large":
		scale = bench.Large
	default:
		log.Fatalf("unknown scale %q", *scaleS)
	}
	scale.Seed = *seed

	wanted := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		wanted[strings.TrimSpace(e)] = true
	}
	all := wanted["all"]
	run := func(name string) bool { return all || wanted[name] }

	w := bench.NewWorkspace(scale)
	out := os.Stdout
	fmt.Fprintf(out, "ncbench scale=%s (initial voters %d, %d years, seed %d)\n\n",
		*scaleS, scale.InitialVoters, scale.Years, scale.Seed)

	report := bench.Report{Scale: scale}
	if run("table1") {
		t1 := bench.RunTable1(w, out)
		report.Table1 = &t1
		fmt.Fprintln(out)
	}
	if run("table2") {
		t2 := bench.RunTable2(w, out)
		report.Table2 = &t2
		fmt.Fprintln(out)
	}
	if run("figure1") {
		bench.RunFigure1(w, out)
		fmt.Fprintln(out)
	}
	if run("figure3") {
		f3 := bench.RunFigure3Examples(out)
		report.Figure3 = &f3
		fmt.Fprintln(out)
	}
	if run("figure4a") {
		f4a := bench.RunFigure4a(w, out)
		report.Figure4a = &f4a
		fmt.Fprintln(out)
	}
	if run("figure4b") {
		f4b := bench.RunFigure4b(w, out)
		report.Figure4b = &f4b
		fmt.Fprintln(out)
	}
	if run("figure4c") {
		f4c := bench.RunFigure4c(scale.Seed, out)
		report.Figure4c = &f4c
		fmt.Fprintln(out)
	}
	if run("table3") {
		t3 := bench.RunTable3(w, *top, out)
		report.Table3 = &t3
		fmt.Fprintln(out)
	}
	if run("table4") {
		t4 := bench.RunTable4(w, out)
		report.Table4 = &t4
		fmt.Fprintln(out)
	}
	if run("figure5") {
		report.Figure5 = bench.RunFigure5(w, *top, out)
		fmt.Fprintln(out)
	}
	if run("figure5cmp") {
		report.Figure5C = bench.RunFigure5Comparators(scale.Seed, out)
		fmt.Fprintln(out)
	}
	if run("ablations") {
		bench.RunAblationHashing(w, out)
		bench.RunAblationWindow(w, *top, out)
		bench.RunAblationWeights(w, *top, out)
		bench.RunAblationGeneration(w, out)
		bench.RunAblationNameScoring(w, out)
		bench.RunAblationBlocking(w, *top, out)
		bench.RunAblationPollution(w, out)
		bench.RunAblationMeasures(w, *top, out)
		bench.RunAblationThreshold(w, *top, out)
		bench.RunAblationFS(w, *top, out)
	}
	if run("scalesweep") {
		bench.RunScaleSweep(scale.Seed, []int{scale.InitialVoters, scale.InitialVoters * 4}, scale.Years, out)
	}
	if wanted["serving"] {
		runServingLatency(w, *serveN, out)
		fmt.Fprintln(out)
	}
	if wanted["load"] {
		if err := runServingLoad(w, *loadW, *loadN, *sjson, out); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out)
	}
	if wanted["ingest"] {
		if _, err := bench.RunIngestThroughput(scale, bench.DefaultIngestWorkers(), out); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out)
	}
	if wanted["matching"] {
		if _, err := bench.RunMatchingThroughput(w, *top, bench.DefaultMatchingWorkers(), *mjson, out); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out)
	}
	if wanted["blocking"] {
		if _, err := bench.RunBlockingBench(w, *top, bench.DefaultBlockingWorkers(), *bjson, out); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out)
	}
	if wanted["docstore"] {
		if _, err := bench.RunDocstoreBench(w, bench.DefaultDocstoreWorkers(), *djson, out); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out)
	}
	if wanted["delta"] {
		if _, err := bench.RunDeltaBench(scale, *dlwork, *dljson, out); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out)
	}
	if wanted["dedup"] {
		var workers []int
		if *ddwork > 0 {
			workers = []int{*ddwork}
		}
		if _, err := bench.RunDedupBench(scale.Seed, *ddrec, workers, *ddjson, out); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out)
	}
	if *mdPath != "" {
		f, err := os.Create(*mdPath)
		if err != nil {
			log.Fatal(err)
		}
		report.WriteMarkdown(f)
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(out, "wrote markdown report to %s\n", *mdPath)
	}
}
