// Command ncgen generates a synthetic North Carolina voter register: one
// TSV snapshot file per configured snapshot date, in the 90-attribute
// schema, with realistic manual-entry errors, format drift and a small rate
// of unsound NCID reuse.
//
// Usage:
//
//	ncgen -out snapshots/ -voters 5000 -years 13 -seed 1
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/corrupt"
	"repro/internal/provenance"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ncgen: ")
	var (
		out     = flag.String("out", "snapshots", "output directory for TSV snapshot files")
		voters  = flag.Int("voters", 2000, "initial registered voters")
		years   = flag.Int("years", 13, "years of snapshot history")
		seed    = flag.Int64("seed", 1, "random seed (same seed, same data)")
		heavy   = flag.Bool("heavy", false, "use the heavy error mix instead of the realistic light one")
		unsound = flag.Float64("unsound", 0.002, "fraction of new voters wrongly reusing a removed NCID")
		workers = flag.Int("workers", 0, "parallel snapshot writers (0 = all cores, 1 = sequential); same files either way")
	)
	flag.Parse()

	cfg := synth.DefaultConfig(*seed, *voters)
	cfg.Snapshots = synth.Calendar(2008, *years)
	cfg.UnsoundRate = *unsound
	if *heavy {
		cfg.Errors = corrupt.Heavy()
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	paths, err := synth.WriteAllParallel(cfg, *out, *workers)
	if err != nil {
		log.Fatal(err)
	}
	// Drop the generator descriptor next to the snapshots: ncimport carries
	// it into the store's provenance record, binding the corpus to this
	// exact (tool, seed, parameters) run.
	errors := "light"
	if *heavy {
		errors = "heavy"
	}
	if err := provenance.WriteGeneratorInfo(*out, provenance.GeneratorInfo{
		Tool: "ncgen", Seed: *seed, Voters: *voters, Years: *years,
		Errors: errors, UnsoundRate: *unsound,
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d snapshots to %s (initial voters %d, %d years, seed %d)\n",
		len(paths), *out, *voters, *years, *seed)
}
