// Command ncimport builds a test dataset from register snapshots: it
// imports every VR_Snapshot_*.tsv of the input directory under the chosen
// duplicate-removal mode, optionally computes the plausibility and
// heterogeneity version-similarity maps, publishes the version and persists
// the cluster documents into a document database directory.
//
// Usage:
//
//	ncimport -in snapshots/ -mode trimming -scores -db store/
//	ncimport -in snapshots/ -workers 8 -metrics-addr :9090 -db store/
//
// Re-running against an existing -db directory continues the dataset: new
// snapshots are appended as a new version (the paper's update process,
// Fig. 2). With -workers != 1 each snapshot file runs through the sharded
// parallel ingest pipeline; the result is identical to the sequential
// import. -store-workers sizes the document store's segmented save/load
// pool the same way (the store bytes and contents are identical at any
// count). -metrics-addr serves GET /metrics (JSON and Prometheus) with the
// ingest and docstore counters while the import runs.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/docstore"
	"repro/internal/hetero"
	"repro/internal/obs"
	"repro/internal/plaus"
	"repro/internal/voter"
)

func parseMode(s string) (core.RemovalMode, error) {
	switch s {
	case "none", "no":
		return core.RemoveNone, nil
	case "exact":
		return core.RemoveExact, nil
	case "trimming", "trimmed":
		return core.RemoveTrimmed, nil
	case "person", "person-data":
		return core.RemovePersonData, nil
	}
	return 0, fmt.Errorf("unknown removal mode %q (none|exact|trimming|person)", s)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ncimport: ")
	var (
		in           = flag.String("in", "snapshots", "directory with VR_Snapshot_*.tsv files")
		modeS        = flag.String("mode", "trimming", "duplicate-removal mode: none|exact|trimming|person")
		db           = flag.String("db", "store", "document-database directory (created or continued)")
		scores       = flag.Bool("scores", false, "compute plausibility and heterogeneity maps")
		workers      = flag.Int("workers", 0, "ingest workers per snapshot file (0 = all cores, 1 = sequential)")
		storeWorkers = flag.Int("store-workers", 0, "document-store save/load workers (0 = all cores); results are identical at any count")
		metricsAddr  = flag.String("metrics-addr", "", "serve GET /metrics with ingest counters on this address during the import (e.g. :9090)")
	)
	flag.Parse()

	mode, err := parseMode(*modeS)
	if err != nil {
		log.Fatal(err)
	}
	metrics := obs.NewMetrics()

	var ds *core.Dataset
	if _, err := os.Stat(*db); err == nil {
		existing, err := docstore.LoadParallelOpts(*db, docstore.LoadOpts{Workers: *storeWorkers, Observer: metrics})
		if err != nil {
			log.Fatalf("loading %s: %v", *db, err)
		}
		if ds, err = core.FromDocDBParallel(existing, *storeWorkers); err != nil {
			// A fresh directory without dataset metadata: start clean.
			ds = core.NewDataset(mode)
		} else {
			if ds.Mode != mode {
				log.Fatalf("store %s uses mode %q; cannot continue with %q", *db, ds.Mode, mode)
			}
			fmt.Printf("continuing store %s: %d clusters, %d records, version %d\n",
				*db, ds.NumClusters(), ds.NumRecords(), len(ds.Versions()))
		}
	} else {
		ds = core.NewDataset(mode)
	}

	files, err := voter.ListSnapshotFiles(*in)
	if err != nil {
		log.Fatal(err)
	}
	if len(files) == 0 {
		log.Fatalf("no VR_Snapshot_*.tsv files in %s", *in)
	}
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", metrics.Handler())
		go func() {
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
	}

	opts := core.IngestOptions{Workers: *workers, Observer: metrics}
	for _, path := range files {
		// Stream the file: register-sized snapshots never materialize.
		// With workers != 1 the sharded pipeline decodes and hashes rows
		// on all cores; the result is identical to the sequential import.
		st, err := ds.ImportSnapshotFileParallelOpts(path, opts)
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		fmt.Printf("imported %s: %d rows, %d new records, %d new objects\n",
			st.Snapshot, st.Rows, st.NewRecords, st.NewObjects)
	}
	if *scores {
		fmt.Println("computing plausibility scores ...")
		plaus.Update(ds)
		fmt.Println("computing heterogeneity scores ...")
		hetero.Update(ds)
	}
	version := ds.Publish()
	// Segmented parallel save: segment files plus a manifest. The bytes do
	// not depend on the worker count, and older flat stores load unchanged.
	if err := ds.ToDocDB().SaveParallelOpts(*db, docstore.SaveOpts{Workers: *storeWorkers, Observer: metrics}); err != nil {
		log.Fatal(err)
	}
	printIngestCounters(metrics)
	fmt.Printf("published version %d: %d clusters, %d records, %d duplicate pairs -> %s\n",
		version, ds.NumClusters(), ds.NumRecords(), ds.NumPairs(), *db)
}

// printIngestCounters summarizes the ingest and docstore counters after the
// import. The sequential ingest path (workers = 1 on a single core) emits
// no ingest counters.
func printIngestCounters(m *obs.Metrics) {
	counters := m.Snapshot().Counters
	names := make([]string, 0, len(counters))
	for name := range counters {
		names = append(names, name)
	}
	if len(names) == 0 {
		return
	}
	sort.Strings(names)
	fmt.Println("pipeline counters:")
	for _, name := range names {
		fmt.Printf("  %-28s %d\n", name, counters[name])
	}
}
