// Command ncimport builds a test dataset from register snapshots: it
// imports every VR_Snapshot_*.tsv of the input directory under the chosen
// duplicate-removal mode, optionally computes the plausibility and
// heterogeneity version-similarity maps, publishes the version and persists
// the cluster documents into a document database directory.
//
// Usage:
//
//	ncimport -in snapshots/ -mode trimming -scores -db store/
//	ncimport -in snapshots/ -workers 8 -metrics-addr :9090 -db store/
//
// Re-running against an existing -db directory continues the dataset: new
// snapshots are appended as a new version (the paper's update process,
// Fig. 2). With -workers != 1 each snapshot file runs through the sharded
// parallel ingest pipeline; the result is identical to the sequential
// import. -workers also sizes dirty-cluster and -scores recomputation.
// -store-workers sizes the document store's segmented save/load pool the
// same way (the store bytes and contents are identical at any count).
// -metrics-addr serves GET /metrics (JSON and Prometheus) with the ingest
// and docstore counters while the import runs. -v prints per-stage wall
// times (load, parse+merge per snapshot, score, persist).
//
// -delta switches a continued import onto the incremental path: each
// snapshot is diffed against a fingerprint index of the loaded dataset, only
// clusters whose rows actually changed are touched, -scores recomputes the
// similarity maps only for clusters that gained records, and the store save
// rewrites only segments holding touched clusters (requires -stride, which
// pins the stable segment layout the reuse depends on; the first -delta run
// over a store saved with a different layout falls back to a full rewrite
// and stamps the stride for next time). The result is bit-identical to a
// full reimport — provided the continued store's scores were current, i.e.
// every earlier run of a -scores pipeline also used -scores.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/docstore"
	"repro/internal/hetero"
	"repro/internal/obs"
	"repro/internal/plaus"
	"repro/internal/provenance"
	"repro/internal/voter"
)

// stampMeta assembles the provenance metadata of one import run: the mode,
// the full snapshot lineage across all published versions, and the ncgen
// descriptor of the input directory when one is present.
func stampMeta(ds *core.Dataset, in string) provenance.Meta {
	gen, err := provenance.ReadGeneratorInfo(in)
	if err != nil {
		log.Printf("reading %s: %v (continuing without generator metadata)", in, err)
		gen = nil
	}
	return provenance.Meta{
		Source:    "ncimport",
		Mode:      ds.Mode.String(),
		Lineage:   ds.SnapshotLineage(),
		Generator: gen,
	}
}

func parseMode(s string) (core.RemovalMode, error) {
	switch s {
	case "none", "no":
		return core.RemoveNone, nil
	case "exact":
		return core.RemoveExact, nil
	case "trimming", "trimmed":
		return core.RemoveTrimmed, nil
	case "person", "person-data":
		return core.RemovePersonData, nil
	}
	return 0, fmt.Errorf("unknown removal mode %q (none|exact|trimming|person)", s)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ncimport: ")
	var (
		in           = flag.String("in", "snapshots", "directory with VR_Snapshot_*.tsv files")
		modeS        = flag.String("mode", "trimming", "duplicate-removal mode: none|exact|trimming|person")
		db           = flag.String("db", "store", "document-database directory (created or continued)")
		scores       = flag.Bool("scores", false, "compute plausibility and heterogeneity maps")
		workers      = flag.Int("workers", 0, "ingest and score-recomputation workers (0 = all cores, 1 = sequential)")
		storeWorkers = flag.Int("store-workers", 0, "document-store save/load workers (0 = all cores); results are identical at any count")
		metricsAddr  = flag.String("metrics-addr", "", "serve GET /metrics with ingest counters on this address during the import (e.g. :9090)")
		delta        = flag.Bool("delta", false, "incremental import: diff snapshots against the continued store, rescore only dirty clusters, rewrite only dirty segments")
		stride       = flag.Int("stride", 0, "stable segment layout: documents per segment (0 = balanced layout; required > 0 by -delta)")
		verbose      = flag.Bool("v", false, "print per-stage wall times (load, parse+merge, score, persist)")
	)
	flag.Parse()
	if *delta && *stride <= 0 {
		log.Fatal("-delta requires -stride > 0: dirty-segment reuse needs the stable segment layout")
	}

	mode, err := parseMode(*modeS)
	if err != nil {
		log.Fatal(err)
	}
	metrics := obs.NewMetrics()

	// stages accumulates wall time per pipeline stage for -v.
	stages := map[string]time.Duration{}
	var stageOrder []string
	timed := func(name string, f func()) {
		start := time.Now()
		f()
		if _, seen := stages[name]; !seen {
			stageOrder = append(stageOrder, name)
		}
		stages[name] += time.Since(start)
	}

	loadStart := time.Now()
	var ds *core.Dataset
	if _, err := os.Stat(*db); err == nil {
		existing, err := docstore.LoadParallelOpts(*db, docstore.LoadOpts{Workers: *storeWorkers, Observer: metrics})
		if err != nil {
			log.Fatalf("loading %s: %v", *db, err)
		}
		if ds, err = core.FromDocDBParallel(existing, *storeWorkers); err != nil {
			// A fresh directory without dataset metadata: start clean.
			ds = core.NewDataset(mode)
		} else {
			if ds.Mode != mode {
				log.Fatalf("store %s uses mode %q; cannot continue with %q", *db, ds.Mode, mode)
			}
			fmt.Printf("continuing store %s: %d clusters, %d records, version %d\n",
				*db, ds.NumClusters(), ds.NumRecords(), len(ds.Versions()))
		}
	} else {
		ds = core.NewDataset(mode)
	}
	stages["load"] = time.Since(loadStart)
	stageOrder = append(stageOrder, "load")
	if *delta && len(ds.Versions()) == 0 {
		log.Fatalf("-delta continues an existing store, but %s holds no published dataset", *db)
	}

	files, err := voter.ListSnapshotFiles(*in)
	if err != nil {
		log.Fatal(err)
	}
	if len(files) == 0 {
		log.Fatalf("no VR_Snapshot_*.tsv files in %s", *in)
	}
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", metrics.Handler())
		go func() {
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
	}

	saveOpts := docstore.SaveOpts{Workers: *storeWorkers, Observer: metrics, Stride: *stride}
	if *delta {
		// Incremental path: classify every row against the fingerprint index
		// of the loaded dataset, touch only changed clusters, and remember
		// which ones changed bytes (segment reuse) or gained records (score
		// recomputation).
		merged := &core.Delta{}
		var ix *core.FingerprintIndex
		timed("index", func() { ix = core.BuildFingerprintIndex(ds) })
		for _, path := range files {
			var dl *core.Delta
			timed("parse+merge", func() {
				var err error
				dl, err = ds.ApplySnapshotDelta(path, core.DeltaOptions{
					Workers: *workers, Observer: metrics, Index: ix,
				})
				if err != nil {
					log.Fatalf("%s: %v", path, err)
				}
			})
			merged.Merge(dl)
			fmt.Printf("applied %s: %d rows (%d unchanged), %d new records, %d clusters touched, %d dirty\n",
				dl.Stats.Snapshot, dl.Stats.Rows, dl.Stats.UnchangedRows,
				dl.Stats.NewRecords, dl.Stats.TouchedClusters, dl.Stats.DirtyClusters)
		}
		if *scores {
			dirty := merged.Dirty()
			fmt.Printf("recomputing scores for %d dirty clusters ...\n", len(dirty))
			timed("score", func() {
				plaus.UpdateDelta(ds, merged, *workers)
				hetero.UpdateDelta(ds, merged, *workers)
			})
			metrics.AddN("delta_clusters_rescored", int64(len(dirty)))
		}
		version := ds.Publish()
		saveOpts.Dirty = merged.DirtyIDs()
		timed("persist", func() {
			// Save and stamp in one pass: the dirty save reuses unchanged
			// segments, and the provenance record extends the store's hash
			// chain, carrying their digests over.
			if _, err := provenance.Save(ds.ToDocDB(), *db, saveOpts,
				provenance.StampOpts{Meta: stampMeta(ds, *in), Observer: metrics}); err != nil {
				log.Fatal(err)
			}
		})
		printIngestCounters(metrics)
		printStageTimings(*verbose, stageOrder, stages)
		fmt.Printf("published version %d: %d clusters, %d records, %d duplicate pairs -> %s\n",
			version, ds.NumClusters(), ds.NumRecords(), ds.NumPairs(), *db)
		return
	}

	opts := core.IngestOptions{Workers: *workers, Observer: metrics}
	for _, path := range files {
		// Stream the file: register-sized snapshots never materialize.
		// With workers != 1 the sharded pipeline decodes and hashes rows
		// on all cores; the result is identical to the sequential import.
		timed("parse+merge", func() {
			st, err := ds.ImportSnapshotFileParallelOpts(path, opts)
			if err != nil {
				log.Fatalf("%s: %v", path, err)
			}
			fmt.Printf("imported %s: %d rows, %d new records, %d new objects\n",
				st.Snapshot, st.Rows, st.NewRecords, st.NewObjects)
		})
	}
	if *scores {
		timed("score", func() {
			fmt.Println("computing plausibility scores ...")
			plaus.UpdateParallel(ds, *workers)
			fmt.Println("computing heterogeneity scores ...")
			hetero.UpdateParallel(ds, *workers)
		})
	}
	version := ds.Publish()
	// Segmented parallel save plus a provenance stamp: segment files, a
	// manifest per collection, and a hash-chained record of their digests
	// (`ncstats -verify` re-derives it). The bytes do not depend on the
	// worker count, and older flat stores load unchanged.
	timed("persist", func() {
		if _, err := provenance.Save(ds.ToDocDB(), *db, saveOpts,
			provenance.StampOpts{Meta: stampMeta(ds, *in), Observer: metrics}); err != nil {
			log.Fatal(err)
		}
	})
	printIngestCounters(metrics)
	printStageTimings(*verbose, stageOrder, stages)
	fmt.Printf("published version %d: %d clusters, %d records, %d duplicate pairs -> %s\n",
		version, ds.NumClusters(), ds.NumRecords(), ds.NumPairs(), *db)
}

// printStageTimings reports each pipeline stage's wall time under -v.
func printStageTimings(verbose bool, order []string, stages map[string]time.Duration) {
	if !verbose {
		return
	}
	fmt.Println("stage timings:")
	for _, name := range order {
		fmt.Printf("  %-12s %10.3fs\n", name, stages[name].Seconds())
	}
}

// printIngestCounters summarizes the ingest and docstore counters after the
// import. The sequential ingest path (workers = 1 on a single core) emits
// no ingest counters.
func printIngestCounters(m *obs.Metrics) {
	counters := m.Snapshot().Counters
	names := make([]string, 0, len(counters))
	for name := range counters {
		names = append(names, name)
	}
	if len(names) == 0 {
		return
	}
	sort.Strings(names)
	fmt.Println("pipeline counters:")
	for _, name := range names {
		fmt.Printf("  %-28s %d\n", name, counters[name])
	}
}
