// Command ncimport builds a test dataset from register snapshots: it
// imports every VR_Snapshot_*.tsv of the input directory under the chosen
// duplicate-removal mode, optionally computes the plausibility and
// heterogeneity version-similarity maps, publishes the version and persists
// the cluster documents into a document database directory.
//
// Usage:
//
//	ncimport -in snapshots/ -mode trimming -scores -db store/
//
// Re-running against an existing -db directory continues the dataset: new
// snapshots are appended as a new version (the paper's update process,
// Fig. 2).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/docstore"
	"repro/internal/hetero"
	"repro/internal/plaus"
	"repro/internal/voter"
)

func parseMode(s string) (core.RemovalMode, error) {
	switch s {
	case "none", "no":
		return core.RemoveNone, nil
	case "exact":
		return core.RemoveExact, nil
	case "trimming", "trimmed":
		return core.RemoveTrimmed, nil
	case "person", "person-data":
		return core.RemovePersonData, nil
	}
	return 0, fmt.Errorf("unknown removal mode %q (none|exact|trimming|person)", s)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ncimport: ")
	var (
		in     = flag.String("in", "snapshots", "directory with VR_Snapshot_*.tsv files")
		modeS  = flag.String("mode", "trimming", "duplicate-removal mode: none|exact|trimming|person")
		db     = flag.String("db", "store", "document-database directory (created or continued)")
		scores = flag.Bool("scores", false, "compute plausibility and heterogeneity maps")
	)
	flag.Parse()

	mode, err := parseMode(*modeS)
	if err != nil {
		log.Fatal(err)
	}

	var ds *core.Dataset
	if _, err := os.Stat(*db); err == nil {
		existing, err := docstore.Load(*db)
		if err != nil {
			log.Fatalf("loading %s: %v", *db, err)
		}
		if ds, err = core.FromDocDB(existing); err != nil {
			// A fresh directory without dataset metadata: start clean.
			ds = core.NewDataset(mode)
		} else {
			if ds.Mode != mode {
				log.Fatalf("store %s uses mode %q; cannot continue with %q", *db, ds.Mode, mode)
			}
			fmt.Printf("continuing store %s: %d clusters, %d records, version %d\n",
				*db, ds.NumClusters(), ds.NumRecords(), len(ds.Versions()))
		}
	} else {
		ds = core.NewDataset(mode)
	}

	files, err := voter.ListSnapshotFiles(*in)
	if err != nil {
		log.Fatal(err)
	}
	if len(files) == 0 {
		log.Fatalf("no VR_Snapshot_*.tsv files in %s", *in)
	}
	for _, path := range files {
		// Stream the file: register-sized snapshots never materialize.
		st, err := ds.ImportSnapshotFile(path)
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		fmt.Printf("imported %s: %d rows, %d new records, %d new objects\n",
			st.Snapshot, st.Rows, st.NewRecords, st.NewObjects)
	}
	if *scores {
		fmt.Println("computing plausibility scores ...")
		plaus.Update(ds)
		fmt.Println("computing heterogeneity scores ...")
		hetero.Update(ds)
	}
	version := ds.Publish()
	if err := ds.ToDocDB().Save(*db); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published version %d: %d clusters, %d records, %d duplicate pairs -> %s\n",
		version, ds.NumClusters(), ds.NumRecords(), ds.NumPairs(), *db)
}
