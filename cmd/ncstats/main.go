// Command ncstats prints the statistics of a stored test dataset: the
// per-year import history (Table 1), the generation summary, the
// cluster-size histogram (Fig. 1) and — when scores were computed — the
// plausibility and heterogeneity distributions (Fig. 4).
//
// With -verify it instead checks the store against its provenance record
// (internal/provenance): every segment and manifest digest is re-derived and
// the hash chain is walked, so any flipped bit since the last stamp is
// reported with the exact corrupted file named. -expect-root additionally
// pins the record to an out-of-band corpus root or head hash.
//
// Usage:
//
//	ncstats -db store/
//	ncstats -db store/ -verify [-verify-workers N] [-expect-root HEX]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/docstore"
	"repro/internal/hetero"
	"repro/internal/plaus"
	"repro/internal/provenance"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ncstats: ")
	var (
		db         = flag.String("db", "store", "document-database directory")
		version    = flag.Int("version", 0, "reconstruct and report this published version (0 = latest)")
		from       = flag.String("from", "", "restrict to snapshots >= this date (YYYY-MM-DD)")
		to         = flag.String("to", "", "restrict to snapshots <= this date (YYYY-MM-DD)")
		verify     = flag.Bool("verify", false, "verify the store against its provenance record and exit")
		verifyWork = flag.Int("verify-workers", 0, "leaf-hashing workers for -verify (0 = all cores)")
		expectRoot = flag.String("expect-root", "", "with -verify: require the record's corpus root or head hash to equal this digest")
	)
	flag.Parse()

	if *verify {
		runVerify(*db, *verifyWork, *expectRoot)
		return
	}

	stored, err := docstore.Load(*db)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := core.FromDocDB(stored)
	if err != nil {
		log.Fatal(err)
	}
	out := os.Stdout

	fmt.Fprintf(out, "store %s: mode %q, %d versions\n", *db, ds.Mode, len(ds.Versions()))
	if *version > 0 {
		if *version > len(ds.Versions()) {
			log.Fatalf("version %d not published (latest is %d)", *version, len(ds.Versions()))
		}
		ds = ds.ReconstructVersion(*version)
		fmt.Fprintf(out, "reconstructed version %d\n", *version)
	}
	if *from != "" || *to != "" {
		lo, hi := *from, *to
		if lo == "" {
			lo = "0000-01-01"
		}
		if hi == "" {
			hi = "9999-12-31"
		}
		ds = ds.SnapshotRange(lo, hi)
		fmt.Fprintf(out, "restricted to snapshots %s .. %s\n", lo, hi)
	}
	fmt.Fprintf(out, "clusters %d, records %d, duplicate pairs %d, avg cluster %.2f, max cluster %d\n",
		ds.NumClusters(), ds.NumRecords(), ds.NumPairs(), ds.AvgClusterSize(), ds.MaxClusterSize())
	fmt.Fprintf(out, "rows offered %d, removed as near-exact duplicates %d (%.1f%%)\n",
		ds.TotalRows(), ds.RemovedRecords(),
		100*float64(ds.RemovedRecords())/float64(max(1, ds.TotalRows())))

	fmt.Fprintln(out, "\nper-year import history:")
	for _, y := range ds.YearlyStats() {
		fmt.Fprintf(out, "  %d: %d snapshots, %d rows, %d new records (%.1f%%), %d new objects (%.1f%%)\n",
			y.Year, y.Snapshots, y.TotalRecords, y.NewRecords, 100*y.NewRecordRate,
			y.NewObjects, 100*y.NewObjectRate)
	}

	fmt.Fprintln(out, "\ncluster-size histogram:")
	hist := ds.ClusterSizeHistogram()
	sizes := make([]int, 0, len(hist))
	for s := range hist {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	for _, s := range sizes {
		fmt.Fprintf(out, "  size %3d: %d clusters\n", s, hist[s])
	}

	if ps := plaus.ClusterPlausibility(ds); len(ps) > 0 {
		fmt.Fprintf(out, "\nplausibility: %d scored clusters, avg %.3f, min %.3f\n",
			len(ps), mean(ps), minOf(ps))
	}
	if hs := hetero.ClusterHeterogeneity(ds, core.KindHeteroPerson); len(hs) > 0 {
		fmt.Fprintf(out, "heterogeneity (person): %d scored clusters, avg %.3f, max %.3f\n",
			len(hs), mean(hs), maxOf(hs))
	}
}

// runVerify checks the store against its provenance record and exits: 0 on
// a clean verification, non-zero with every corrupted file named otherwise.
func runVerify(dir string, workers int, expectRoot string) {
	rep, err := provenance.VerifyDir(dir, provenance.VerifyOpts{
		Workers:    workers,
		ExpectRoot: expectRoot,
	})
	if err != nil {
		for _, f := range rep.Bad {
			log.Printf("corrupted: %s", f)
		}
		log.Fatal(err)
	}
	rec := rep.Record
	fmt.Printf("store %s: provenance OK\n", dir)
	fmt.Printf("  chain: %d link(s), head %s\n", len(rec.Chain), rec.HeadHash())
	fmt.Printf("  corpus root: %s\n", rec.Root())
	fmt.Printf("  verified: %d collection(s), %d segment(s), %d documents, %d bytes hashed\n",
		len(rec.Collections), rep.Leaves, rec.Head().Docs, rep.Bytes)
	if len(rec.Meta.Lineage) > 0 {
		fmt.Printf("  lineage: %d snapshot(s), %s .. %s\n",
			len(rec.Meta.Lineage), rec.Meta.Lineage[0], rec.Meta.Lineage[len(rec.Meta.Lineage)-1])
	}
	if g := rec.Meta.Generator; g != nil {
		fmt.Printf("  generator: %s seed %d (%d voters, %d years, %s errors)\n",
			g.Tool, g.Seed, g.Voters, g.Years, g.Errors)
	}
}

func mean(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

func minOf(v []float64) float64 {
	m := v[0]
	for _, x := range v {
		if x < m {
			m = x
		}
	}
	return m
}

func maxOf(v []float64) float64 {
	m := v[0]
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
