// Command ncstats prints the statistics of a stored test dataset: the
// per-year import history (Table 1), the generation summary, the
// cluster-size histogram (Fig. 1) and — when scores were computed — the
// plausibility and heterogeneity distributions (Fig. 4).
//
// Usage:
//
//	ncstats -db store/
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/docstore"
	"repro/internal/hetero"
	"repro/internal/plaus"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ncstats: ")
	var (
		db      = flag.String("db", "store", "document-database directory")
		version = flag.Int("version", 0, "reconstruct and report this published version (0 = latest)")
		from    = flag.String("from", "", "restrict to snapshots >= this date (YYYY-MM-DD)")
		to      = flag.String("to", "", "restrict to snapshots <= this date (YYYY-MM-DD)")
	)
	flag.Parse()

	stored, err := docstore.Load(*db)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := core.FromDocDB(stored)
	if err != nil {
		log.Fatal(err)
	}
	out := os.Stdout

	fmt.Fprintf(out, "store %s: mode %q, %d versions\n", *db, ds.Mode, len(ds.Versions()))
	if *version > 0 {
		if *version > len(ds.Versions()) {
			log.Fatalf("version %d not published (latest is %d)", *version, len(ds.Versions()))
		}
		ds = ds.ReconstructVersion(*version)
		fmt.Fprintf(out, "reconstructed version %d\n", *version)
	}
	if *from != "" || *to != "" {
		lo, hi := *from, *to
		if lo == "" {
			lo = "0000-01-01"
		}
		if hi == "" {
			hi = "9999-12-31"
		}
		ds = ds.SnapshotRange(lo, hi)
		fmt.Fprintf(out, "restricted to snapshots %s .. %s\n", lo, hi)
	}
	fmt.Fprintf(out, "clusters %d, records %d, duplicate pairs %d, avg cluster %.2f, max cluster %d\n",
		ds.NumClusters(), ds.NumRecords(), ds.NumPairs(), ds.AvgClusterSize(), ds.MaxClusterSize())
	fmt.Fprintf(out, "rows offered %d, removed as near-exact duplicates %d (%.1f%%)\n",
		ds.TotalRows(), ds.RemovedRecords(),
		100*float64(ds.RemovedRecords())/float64(max(1, ds.TotalRows())))

	fmt.Fprintln(out, "\nper-year import history:")
	for _, y := range ds.YearlyStats() {
		fmt.Fprintf(out, "  %d: %d snapshots, %d rows, %d new records (%.1f%%), %d new objects (%.1f%%)\n",
			y.Year, y.Snapshots, y.TotalRecords, y.NewRecords, 100*y.NewRecordRate,
			y.NewObjects, 100*y.NewObjectRate)
	}

	fmt.Fprintln(out, "\ncluster-size histogram:")
	hist := ds.ClusterSizeHistogram()
	sizes := make([]int, 0, len(hist))
	for s := range hist {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	for _, s := range sizes {
		fmt.Fprintf(out, "  size %3d: %d clusters\n", s, hist[s])
	}

	if ps := plaus.ClusterPlausibility(ds); len(ps) > 0 {
		fmt.Fprintf(out, "\nplausibility: %d scored clusters, avg %.3f, min %.3f\n",
			len(ps), mean(ps), minOf(ps))
	}
	if hs := hetero.ClusterHeterogeneity(ds, core.KindHeteroPerson); len(hs) > 0 {
		fmt.Fprintf(out, "heterogeneity (person): %d scored clusters, avg %.3f, max %.3f\n",
			len(hs), mean(hs), maxOf(hs))
	}
}

func mean(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

func minOf(v []float64) float64 {
	m := v[0]
	for _, x := range v {
		if x < m {
			m = x
		}
	}
	return m
}

func maxOf(v []float64) float64 {
	m := v[0]
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
